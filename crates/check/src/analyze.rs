//! The semantic analyzer: rules `L006`–`L012` over the extracted
//! workspace model.
//!
//! Where the [`lint`](crate::lint) pass matches line needles, this pass
//! reasons about *structure*:
//!
//! | rule | meaning |
//! |------|---------|
//! | L006 | `.unwrap()` reachable from a sim hot-path root |
//! | L007 | `.expect(…)` reachable from a root and not allowlisted |
//! | L008 | `panic!`-family macro or computed slice index reachable from a root and not allowlisted |
//! | L009 | `spawn`/channel primitive outside `vod-net`'s batch engine or worker pool |
//! | L010 | float sort key via `partial_cmp` without `total_cmp` |
//! | L011 | `Hash`-without-`Ord` type used as a `HashMap`/`HashSet` key |
//! | L012 | `Event` taxonomy drift (see [`drift`](crate::drift)) |
//!
//! The hot-path roots are the entry points the paper's experiments
//! drive — [`ROOTS`] — and reachability is computed over the
//! [`callgraph`](crate::callgraph)'s over-approximating resolution, so
//! dynamic dispatch cannot hide a panic. `L007` honors the existing
//! `L004` allowlist grants (an expect proven infallible for the lint
//! pass is equally infallible here) plus `L008`-tagged grants for
//! release-mode asserts whose invariant is documented. Stale `L007`/
//! `L008` grants are hard findings (`L000`), mirroring the lint pass's
//! allowlist ownership of `L001`–`L005` entries.
//!
//! `vod-bench` and `vod-check` itself are tooling, exempt from the
//! reachability and determinism passes exactly as they are exempt from
//! `L001`/`L004`; the drift pass still reads `vod-check`'s auditor
//! source, which is one of the taxonomy's consumers.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph;
use crate::drift;
use crate::lex::{lex, Tok, TokKind};
use crate::lint::{strip_source, test_line_mask, AllowEntry, Allowlist, Finding, Rule, SourceFile};
use crate::model::{self, PanicKind};

/// The sim hot-path roots reachability starts from: the service's
/// experiment drivers, the flow kernel's advancement entry points, and
/// the routing engine's batch selector.
pub const ROOTS: &[&str] = &[
    "VodService::run_full",
    "VodService::run_to_end",
    "FlowNetwork::advance",
    "FlowNetwork::advance_into",
    "FlowNetwork::next_completion",
    "RoutingEngine::select_batch",
];

/// Crates exempt from the reachability and determinism passes
/// (measurement and analysis tooling, same exemption as `L001`/`L004`).
pub const EXEMPT_CRATES: &[&str] = &["bench", "check"];

/// The only files allowed to use thread primitives: `vod-net`'s batch
/// routing engine and its persistent worker pool, whose slot-indexed
/// channel protocol keeps results in deterministic submission order.
/// This is a named set, not a directory grant — a new thread site must
/// be added here explicitly, with its determinism argument.
pub const THREAD_EXEMPT_FILES: &[&str] = &["crates/net/src/engine.rs", "crates/net/src/pool.rs"];

/// Comparator-taking sort/search functions whose key function must be
/// a total order.
const SORT_FNS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "min_by",
    "max_by",
    "binary_search_by",
];

/// The outcome of one analyzer run.
#[derive(Debug, Default)]
pub struct AnalyzeOutcome {
    /// All findings (including hard `L000` stale-allowlist findings),
    /// sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Stale `L007`/`L008` allowlist entries (also present in
    /// `findings` as `L000`).
    pub unused_allow: Vec<AllowEntry>,
    /// Files analyzed (after crate exemptions).
    pub files: usize,
    /// Functions extracted.
    pub fns: usize,
    /// Functions reachable from the roots.
    pub reachable_fns: usize,
}

/// True for files the reachability/determinism passes skip.
fn exempt(path: &str) -> bool {
    EXEMPT_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/")))
}

/// Runs rules `L006`–`L012` over `files` (the full workspace source
/// set; crate exemptions are applied internally).
pub fn analyze(files: &[SourceFile], allow: &Allowlist) -> AnalyzeOutcome {
    let mut out = AnalyzeOutcome::default();
    let analyzed: Vec<SourceFile> = files.iter().filter(|f| !exempt(&f.path)).cloned().collect();
    out.files = analyzed.len();

    let ws = model::extract(&analyzed);
    out.fns = ws.fns.len();
    let graph = callgraph::build(&ws);
    let reach = callgraph::reach(&ws, &graph, ROOTS);
    out.reachable_fns = (0..ws.fns.len()).filter(|&i| reach.is_reachable(i)).count();

    // A root that stopped resolving means the analyzer is anchored to
    // nothing — fail loudly instead of passing vacuously.
    for root in &reach.unresolved_roots {
        out.findings.push(Finding {
            rule: Rule::StaleAllow,
            path: "crates/check/src/analyze.rs".to_string(),
            line: 0,
            message: format!(
                "analyzer root `{root}` resolves to no workspace function; \
                 update ROOTS to the current hot-path entry points"
            ),
        });
    }

    // Raw line text by (path, 1-based line), for allowlist needles.
    let raw_lines: BTreeMap<&str, Vec<&str>> = files
        .iter()
        .map(|f| (f.path.as_str(), f.text.lines().collect()))
        .collect();
    // A needle window of three lines starting at the finding line: a
    // multi-line `assert!` puts its condition and message on the lines
    // after the one holding `assert!(`, and the needle should be able
    // to quote the invariant, not the macro name.
    let raw_line = |path: &str, line: u32| -> String {
        raw_lines
            .get(path)
            .map(|ls| {
                let start = (line as usize).saturating_sub(1);
                ls.iter()
                    .skip(start)
                    .take(3)
                    .copied()
                    .collect::<Vec<_>>()
                    .join("\n")
            })
            .unwrap_or_default()
    };

    let mut allow_used = vec![false; allow.entries().len()];
    let grant = |rule_code: &[&str], path: &str, line_text: &str, used: &mut Vec<bool>| {
        let mut granted = false;
        for (i, e) in allow.entries().iter().enumerate() {
            if rule_code.contains(&e.rule.as_str())
                && e.path == path
                && line_text.contains(&e.needle)
            {
                granted = true;
                if e.rule != "L004" {
                    // L004 entries belong to the lint pass's staleness
                    // accounting; analyze only consumes them.
                    used[i] = true;
                }
            }
        }
        granted
    };

    for (idx, f) in ws.fns.iter().enumerate() {
        if !reach.is_reachable(idx) {
            continue;
        }
        let chain = reach.chain(&ws, idx);
        let root = chain.first().cloned().unwrap_or_default();
        let hops = chain.len().saturating_sub(1);
        for site in &f.panics {
            let line_text = raw_line(&f.file, site.line);
            let (rule, message) = match &site.kind {
                PanicKind::Unwrap => (
                    Rule::ReachableUnwrap,
                    format!(
                        "`.unwrap()` in {} is reachable from hot-path root {root} \
                         ({hops} calls); return a typed error",
                        f.display()
                    ),
                ),
                PanicKind::Expect => {
                    if grant(&["L004", "L007"], &f.file, &line_text, &mut allow_used) {
                        continue;
                    }
                    (
                        Rule::ReachableExpect,
                        format!(
                            "`.expect(…)` in {} is reachable from hot-path root {root} \
                             ({hops} calls) and not allowlisted; document infallibility \
                             in lint_allow.txt or return an error",
                            f.display()
                        ),
                    )
                }
                PanicKind::Macro(name) => {
                    if grant(&["L008"], &f.file, &line_text, &mut allow_used) {
                        continue;
                    }
                    (
                        Rule::ReachablePanic,
                        format!(
                            "`{name}!` in {} is reachable from hot-path root {root} \
                             ({hops} calls); prove the invariant in an L008 allowlist \
                             entry or return an error",
                            f.display()
                        ),
                    )
                }
                PanicKind::Index(expr) => {
                    if grant(&["L008"], &f.file, &line_text, &mut allow_used) {
                        continue;
                    }
                    (
                        Rule::ReachablePanic,
                        format!(
                            "computed slice index `[{expr}]` in {} is reachable from \
                             hot-path root {root} ({hops} calls); bounds-check it or \
                             prove it in an L008 allowlist entry",
                            f.display()
                        ),
                    )
                }
            };
            out.findings.push(Finding {
                rule,
                path: f.file.clone(),
                line: site.line as usize,
                message,
            });
        }
    }

    // Determinism dataflow rules over the token streams.
    let hash_no_ord: BTreeSet<&str> = ws
        .types
        .iter()
        .filter(|t| t.derives.iter().any(|d| d == "Hash") && !t.derives.iter().any(|d| d == "Ord"))
        .map(|t| t.name.as_str())
        .collect();
    for file in &analyzed {
        scan_determinism(file, &hash_no_ord, &mut out.findings);
    }

    // Obs-taxonomy drift runs over the *full* file set: the auditor
    // source in the exempt check crate is one of the consumers.
    out.findings.extend(drift::check(files));

    // Stale L007/L008 grants are hard findings, same contract as the
    // lint pass's L004 staleness.
    for (i, e) in allow.entries().iter().enumerate() {
        let analyzer_owned = e.rule == "L007" || e.rule == "L008";
        if analyzer_owned && !allow_used[i] {
            out.findings.push(Finding {
                rule: Rule::StaleAllow,
                path: e.path.clone(),
                line: 0,
                message: format!(
                    "stale allowlist entry `{} {} {}` granted nothing; remove it",
                    e.rule, e.path, e.needle
                ),
            });
            out.unused_allow.push(e.clone());
        }
    }

    out.findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Token-level determinism rules (`L009`–`L011`) for one file.
fn scan_determinism(file: &SourceFile, hash_no_ord: &BTreeSet<&str>, findings: &mut Vec<Finding>) {
    let stripped = strip_source(&file.text);
    let mask = test_line_mask(&stripped);
    let toks: Vec<Tok> = lex(&stripped)
        .into_iter()
        .filter(|t| !mask.get(t.line as usize - 1).copied().unwrap_or(false))
        .collect();

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(&stripped);
        let called = matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Punct(b'('));

        // L009: thread spawn / mpsc channels outside the batch engine
        // and its worker pool.
        if !THREAD_EXEMPT_FILES.contains(&file.path.as_str())
            && ((name == "spawn" && called) || name == "mpsc")
        {
            findings.push(Finding {
                rule: Rule::ThreadOutsideBatch,
                path: file.path.clone(),
                line: t.line as usize,
                message: format!(
                    "`{name}` outside {}: thread scheduling order would leak \
                     into traces; only the batch engine's deterministic \
                     worker-pool fork/join may use threads",
                    THREAD_EXEMPT_FILES.join(", ")
                ),
            });
        }

        // L010: comparator built on partial_cmp without total_cmp.
        if called && SORT_FNS.contains(&name) {
            let end = balanced_end(&toks, i + 1);
            let span = &toks[i + 2..end.saturating_sub(1).max(i + 2)];
            let has = |needle: &str| {
                span.iter()
                    .any(|t| t.kind == TokKind::Ident && t.text(&stripped) == needle)
            };
            if has("partial_cmp") && !has("total_cmp") {
                findings.push(Finding {
                    rule: Rule::FloatSortKey,
                    path: file.path.clone(),
                    line: t.line as usize,
                    message: format!(
                        "`{name}` comparator uses `partial_cmp`, which is not a total \
                         order over floats (NaN breaks sort stability); use `total_cmp`"
                    ),
                });
            }
        }

        // L011: Hash-without-Ord workspace type as an unordered-map key.
        if (name == "HashMap" || name == "HashSet")
            && matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Punct(b'<'))
        {
            let mut j = i + 2;
            while matches!(
                toks.get(j),
                Some(n) if n.kind == TokKind::Punct(b'&') || n.kind == TokKind::Lifetime
            ) {
                j += 1;
            }
            if let Some(key) = toks.get(j).filter(|n| n.kind == TokKind::Ident) {
                let key_name = key.text(&stripped);
                if hash_no_ord.contains(key_name) {
                    findings.push(Finding {
                        rule: Rule::HashKeyIteration,
                        path: file.path.clone(),
                        line: t.line as usize,
                        message: format!(
                            "`{key_name}` derives Hash but not Ord and keys a {name}; \
                             iterating it leaks nondeterministic order — derive Ord and \
                             use a BTree collection in trace-feeding code"
                        ),
                    });
                }
            }
        }
    }
}

/// Index one past the `)` matching the `(` at `open`.
fn balanced_end(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct(b'(') => depth += 1,
            TokKind::Punct(b')') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, text: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            text: text.to_string(),
        }
    }

    /// Stubs for all six hot-path roots, so fixture workspaces resolve
    /// the anchor without dragging in the real tree. `run_full` calls
    /// `step()`, the hook each fixture hangs its violation on.
    fn roots_stub() -> SourceFile {
        file(
            "crates/core/src/roots.rs",
            "impl VodService {\n    pub fn run_full(&self) { step(); }\n    pub fn run_to_end(&self) {}\n}\n\
             impl FlowNetwork {\n    pub fn advance(&self) {}\n    pub fn advance_into(&self) {}\n    pub fn next_completion(&self) {}\n}\n\
             impl RoutingEngine {\n    pub fn select_batch(&self) {}\n}\n",
        )
    }

    fn analyze_with(extra: &[SourceFile], allow: &Allowlist) -> AnalyzeOutcome {
        let mut files = vec![roots_stub()];
        files.extend(extra.iter().cloned());
        analyze(&files, allow)
    }

    fn codes(out: &AnalyzeOutcome) -> Vec<&'static str> {
        out.findings.iter().map(|f| f.rule.code()).collect()
    }

    #[test]
    fn reachable_unwrap_is_l006_unreachable_is_not() {
        let out = analyze_with(
            &[file(
                "crates/core/src/step.rs",
                "fn step() { x.unwrap(); }\nfn dead() { y.unwrap(); }\n",
            )],
            &Allowlist::default(),
        );
        assert_eq!(codes(&out), vec!["L006"]);
        assert_eq!(out.findings[0].line, 1);
        assert!(out.findings[0].message.contains("run_full"));
    }

    #[test]
    fn reachable_expect_honors_l004_grants() {
        let f = file(
            "crates/core/src/step.rs",
            "fn step() { x.expect(\"always set\"); }\n",
        );
        let out = analyze_with(std::slice::from_ref(&f), &Allowlist::default());
        assert_eq!(codes(&out), vec!["L007"]);
        let allow = Allowlist::parse("L004 crates/core/src/step.rs always set\n");
        let out = analyze_with(&[f], &allow);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn reachable_panic_macro_is_l008_and_grantable() {
        let f = file(
            "crates/core/src/step.rs",
            "fn step(i: usize) { assert!(i > 0, \"i is positive\"); }\n",
        );
        let out = analyze_with(std::slice::from_ref(&f), &Allowlist::default());
        assert_eq!(codes(&out), vec!["L008"]);
        let allow = Allowlist::parse("L008 crates/core/src/step.rs i is positive\n");
        let out = analyze_with(&[f], &allow);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn computed_index_is_l008_plain_index_is_not() {
        let out = analyze_with(
            &[file(
                "crates/core/src/step.rs",
                "fn step(xs: &[u32], i: usize) { let _ = xs[i + 1]; let _ = xs[i]; }\n",
            )],
            &Allowlist::default(),
        );
        assert_eq!(codes(&out), vec!["L008"]);
    }

    #[test]
    fn spawn_outside_engine_is_l009() {
        let out = analyze_with(
            &[file(
                "crates/sim/src/exec.rs",
                "fn f() { std::thread::spawn(|| {}); }\n",
            )],
            &Allowlist::default(),
        );
        assert_eq!(codes(&out), vec!["L009"]);
        // The batch engine and its worker pool are exempt — and nothing
        // else in their directory is.
        for exempt_path in THREAD_EXEMPT_FILES {
            let out = analyze_with(
                &[file(exempt_path, "fn f(s: &Scope) { s.spawn(|| {}); }\n")],
                &Allowlist::default(),
            );
            assert!(out.findings.is_empty(), "{exempt_path}");
        }
        let out = analyze_with(
            &[file(
                "crates/net/src/dijkstra.rs",
                "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }\n",
            )],
            &Allowlist::default(),
        );
        assert_eq!(codes(&out), vec!["L009"]);
    }

    #[test]
    fn partial_cmp_sort_key_is_l010_total_cmp_is_not() {
        let out = analyze_with(
            &[file(
                "crates/net/src/rank.rs",
                "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| cmp(a, b)); }\n\
                 fn g(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).expect(\"no NaN\")); }\n",
            )],
            &Allowlist::default(),
        );
        assert_eq!(codes(&out), vec!["L010"]);
        assert_eq!(out.findings[0].line, 2);
        let out = analyze_with(
            &[file(
                "crates/net/src/rank.rs",
                "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.total_cmp(b)); }\n",
            )],
            &Allowlist::default(),
        );
        assert!(out.findings.is_empty());
    }

    #[test]
    fn hash_without_ord_key_is_l011() {
        let src = "#[derive(Hash, PartialEq, Eq)]\nstruct Key(u32);\n\
                   fn f(m: &HashMap<Key, u32>) {}\n";
        let out = analyze_with(
            &[file("crates/net/src/keys.rs", src)],
            &Allowlist::default(),
        );
        assert_eq!(codes(&out), vec!["L011"]);
        let ok = "#[derive(Hash, PartialEq, Eq, PartialOrd, Ord)]\nstruct Key(u32);\n\
                  fn f(m: &HashMap<Key, u32>) {}\n";
        let out = analyze_with(&[file("crates/net/src/keys.rs", ok)], &Allowlist::default());
        assert!(out.findings.is_empty());
    }

    #[test]
    fn stale_analyzer_grants_are_hard_findings() {
        let allow = Allowlist::parse(
            "L008 crates/core/src/step.rs never matches\n\
             L004 crates/core/src/step.rs lint owns this one\n",
        );
        let out = analyze_with(&[file("crates/core/src/step.rs", "fn step() {}\n")], &allow);
        assert_eq!(codes(&out), vec!["L000"]);
        assert_eq!(out.unused_allow.len(), 1);
        assert_eq!(out.unused_allow[0].rule, "L008");
    }

    #[test]
    fn exempt_crates_are_skipped() {
        let out = analyze_with(
            &[file(
                "crates/bench/src/timing.rs",
                "fn f() { std::thread::spawn(|| {}); x.unwrap(); }\n",
            )],
            &Allowlist::default(),
        );
        assert!(out.findings.is_empty());
    }

    #[test]
    fn unresolved_roots_fail_loudly() {
        let out = analyze(
            &[file("crates/core/src/lib.rs", "fn nothing_here() {}\n")],
            &Allowlist::default(),
        );
        assert!(codes(&out).iter().all(|c| *c == "L000"));
        assert_eq!(out.findings.len(), ROOTS.len());
    }
}
