//! The trace invariant auditor: rules `A000`–`A016` over JSONL traces.
//!
//! A trace written by `vod-obs`'s `JsonlWriter` is *self-auditing*: it
//! opens with the topology, the run configuration, each server's DMA
//! sizing and the initial placement, and then interleaves every link
//! state the selector worked from plus every catalog mutation. This
//! module replays that stream with independent re-implementations of
//! the paper's algorithms and reports every divergence:
//!
//! | rule | invariant |
//! |------|-----------|
//! | A000 | well-formed stream: parseable JSON, required fields, preamble first, non-decreasing `at_us` |
//! | A001 | DMA occupancy: resident megabytes match the traced occupancy and never exceed `disks × capacity_mb` |
//! | A002 | DMA admission threshold: admits only after a title's points exceed the threshold (Figure 2) |
//! | A003 | DMA eviction victim is the least-popular resident, ties to the lowest id |
//! | A004 | striping: part `i` lands on disk `i mod n`, and the part count matches `ceil(size/cluster)` (Figure 3) |
//! | A005 | VRA optimality: each selection matches a reference LVN-weighted Dijkstra over the traced link state (Figure 5) |
//! | A006 | switches: every server change is announced by a `switch` matching the adjacent selection, and vice versa |
//! | A007 | sessions: cluster indices start at 0 and step by at most 1 (repeats only after a re-route) |
//! | A008 | link conservation: traced used bandwidth and utilization are non-negative and leave no negative residual |
//! | A009 | catalog/residency consistency: hits are resident, selections come from advertising servers, no double add/remove |
//! | A010 | fault windows: `link_down`/`link_up` pair up, `link_state.down` matches the replayed outage set, and the A005 reference masks down links (no selection routes over them) |
//! | A011 | retry budget: `session_retry` attempts are 1-based, step by one within an episode, and never exceed `retry_max_attempts` from the run config |
//! | A012 | abort accounting: every `session_aborted.reason` is a known cause and consistent with the configured budget and the session's observed retries |
//! | A013 | series reconciliation ([`crate::series`]): a `TimeSeriesSink` export's windows are contiguous and aligned, per-window counter sums equal the raw trace's event counts, and per-link utilization never exceeds capacity |
//! | A014 | prefix-store occupancy/residency: replayed occupancy matches the traced `occupancy_mb`, never exceeds the proxy's capacity, and hits/serves/extensions only touch resident prefixes |
//! | A015 | prefix admission sizing: admits only after points exceed the threshold, stored lengths never exceed the popularity target `min(base + (points−1)/growth, max)`, sizes fit the cluster geometry, and reject reasons respect the gate order |
//! | A016 | prefix eviction discipline: victims are the least-popular residents (ties to the lowest id), strictly colder than the admitted newcomer, freed space matches the replayed resident size, and every eviction run is immediately followed by its admission |
//!
//! The replayed DMA popularity counter exploits that every `dma_*`
//! decision event corresponds to exactly one `on_request` call, which
//! awards exactly one point before deciding — so points are re-derived
//! from the decision stream itself, with no access to the workload.

use std::collections::{BTreeMap, BTreeSet};

use vod_net::dijkstra::dijkstra;
use vod_net::lvn::{LvnComputer, LvnParams};
use vod_net::node::NodeKind;
use vod_net::units::Fraction;
use vod_net::{LinkId, Mbps, NodeId, Topology, TopologyBuilder, TrafficSnapshot};

use serde::Value;

/// One invariant violation, pointing at a trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The violated rule (`"A000"`…`"A013"`).
    pub rule: &'static str,
    /// 1-based line number in the trace.
    pub line: usize,
    /// What diverged.
    pub message: String,
}

/// The outcome of one audit run.
#[derive(Debug, Default)]
pub struct AuditSummary {
    /// Events processed (parseable lines).
    pub events: usize,
    /// `vra_select` events re-derived against the reference Dijkstra.
    pub selections_verified: usize,
    /// `dma_admit` events checked for occupancy/threshold/striping.
    pub admits_verified: usize,
    /// `dma_evict` events checked for victim optimality.
    pub evictions_verified: usize,
    /// `prefix_*` decision events replayed against the reference
    /// prefix store (hits, admits, evictions, rejections).
    pub prefix_verified: usize,
    /// All violations, in trace order.
    pub violations: Vec<Violation>,
}

impl AuditSummary {
    /// True when every replayed invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Replayed DMA state of one video server.
#[derive(Debug, Clone, Default)]
struct ServerState {
    disks: u64,
    capacity_mb: f64,
    cluster_mb: f64,
    admit_threshold: u64,
    /// Resident titles and their sizes in MB.
    residents: BTreeMap<u64, f64>,
    /// Replayed popularity points (Figure 2's counter).
    points: BTreeMap<u64, u64>,
}

impl ServerState {
    fn total_capacity(&self) -> f64 {
        self.disks as f64 * self.capacity_mb
    }

    fn occupancy(&self) -> f64 {
        self.residents.values().sum()
    }

    fn award(&mut self, video: u64) -> u64 {
        let p = self.points.entry(video).or_insert(0);
        *p += 1;
        *p
    }

    fn least_popular(&self) -> Option<u64> {
        self.residents
            .keys()
            .min_by_key(|&&v| (self.points.get(&v).copied().unwrap_or(0), v))
            .copied()
    }
}

/// Replayed prefix-store state of one regional proxy (rules
/// A014–A016), mirroring `vod-storage`'s `PrefixStore` the way
/// [`ServerState`] mirrors the DMA.
#[derive(Debug, Clone, Default)]
struct PrefixState {
    capacity_mb: f64,
    cluster_mb: f64,
    admit_threshold: u64,
    base_clusters: u64,
    max_clusters: u64,
    growth_points: u64,
    /// Resident prefixes: video → (clusters, exact MB occupied).
    residents: BTreeMap<u64, (u64, f64)>,
    /// Replayed popularity points (one per prefix decision event).
    points: BTreeMap<u64, u64>,
}

impl PrefixState {
    fn occupancy(&self) -> f64 {
        self.residents.values().map(|&(_, mb)| mb).sum()
    }

    fn award(&mut self, video: u64) -> u64 {
        let p = self.points.entry(video).or_insert(0);
        *p += 1;
        *p
    }

    fn least_popular(&self) -> Option<u64> {
        self.residents
            .keys()
            .min_by_key(|&&v| (self.points.get(&v).copied().unwrap_or(0), v))
            .copied()
    }

    /// The popularity target `min(base + (points−1)/growth, max)` —
    /// the store additionally caps at the title's own length, which
    /// only lowers it, so replayed lengths must stay ≤ this.
    fn target_clusters(&self, points: u64) -> u64 {
        let grown = points
            .saturating_sub(1)
            .checked_div(self.growth_points)
            .unwrap_or(0);
        self.base_clusters
            .saturating_add(grown)
            .min(self.max_clusters)
    }
}

/// One prefix eviction awaiting its admission: the service evicts and
/// admits inside a single `on_request`, so the events are adjacent.
#[derive(Debug, Clone)]
struct PendingPrefixEvict {
    line: usize,
    server: u64,
    victim: u64,
    /// The victim's replayed points at eviction time, for the
    /// strictly-colder check against the admitted newcomer.
    victim_points: u64,
}

/// A selection whose server change must be confirmed by the next event.
#[derive(Debug, Clone)]
struct PendingSwitch {
    line: usize,
    session: u64,
    cluster: u64,
    from: u64,
    to: u64,
}

#[derive(Default)]
struct Auditor {
    topology: Option<Topology>,
    link_capacities: Vec<f64>,
    saw_run_config: bool,
    lvn_normalization: Option<f64>,
    retry_max_attempts: Option<u64>,
    servers: BTreeMap<u64, ServerState>,
    prefixes: BTreeMap<u64, PrefixState>,
    prefix_pending_evicts: Vec<PendingPrefixEvict>,
    catalog: BTreeSet<(u64, u64)>,
    snapshot: Option<TrafficSnapshot>,
    /// session → (current server, last selected cluster, video).
    sessions: BTreeMap<u64, (u64, u64, u64)>,
    /// session → last `session_retry` attempt number seen.
    retries: BTreeMap<u64, u64>,
    /// Links currently inside an outage window, replayed from
    /// `link_down`/`link_up` (the service emits them only at depth
    /// edges, so a plain set suffices even under nested windows).
    down_links: BTreeSet<u64>,
    pending_switch: Option<PendingSwitch>,
    last_at_us: Option<u64>,
    summary: AuditSummary,
}

/// Numeric-comparison slack for replayed f64 accumulations (occupancy
/// sums and path costs re-derived in a different evaluation order).
const EPS: f64 = 1e-6;

/// Trace kinds the auditor deliberately does not replay: they carry no
/// invariant beyond the time-order check every event already gets.
/// Request and session-lifecycle markers are reconciled against the
/// time-series export by rule `A013` instead; SNMP/outage/degrade and
/// background-update markers only *explain* the link-state snapshots
/// that the replay rules (`A005`, `A008`, `A010`) verify directly.
///
/// The analyzer's `L012` drift rule cross-references every `Event`
/// variant's kind string against this file, so adding a new variant
/// without either a dispatch arm or an entry here fails the gate.
const UNAUDITED: &[&str] = &[
    "request_arrival",
    "request_failed",
    "request_rejected",
    "session_start",
    "session_stall",
    "session_resume",
    "snmp_poll",
    "background_update",
    "server_up",
    "link_degrade_start",
    "link_degrade_end",
    "snmp_outage_start",
    "snmp_outage_end",
    "snmp_stale_view",
];

/// Audits one JSONL trace; never panics on malformed input — every
/// problem becomes an [`AuditSummary`] violation instead.
pub fn audit_trace(text: &str) -> AuditSummary {
    let mut a = Auditor::default();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Value>(line) {
            Ok(event) => a.on_event(line_no, &event),
            Err(e) => a.violate("A000", line_no, format!("unparseable JSON: {e}")),
        }
    }
    if let Some(p) = a.pending_switch.take() {
        a.violate(
            "A006",
            p.line,
            format!(
                "selection moved session {} to server {} but no switch event followed",
                p.session, p.to
            ),
        );
    }
    for p in std::mem::take(&mut a.prefix_pending_evicts) {
        a.violate(
            "A016",
            p.line,
            format!(
                "prefix eviction of v{} at proxy {} was never followed by an admission",
                p.victim, p.server
            ),
        );
    }
    a.summary
}

impl Auditor {
    fn violate(&mut self, rule: &'static str, line: usize, message: String) {
        self.summary.violations.push(Violation {
            rule,
            line,
            message,
        });
    }

    /// Flushes violations collected while a server's replay state was
    /// mutably borrowed.
    fn flush(&mut self, line: usize, pending: Vec<(&'static str, String)>) {
        for (rule, message) in pending {
            self.violate(rule, line, message);
        }
    }

    fn on_event(&mut self, line: usize, event: &Value) {
        self.summary.events += 1;
        let Some(at_us) = event.get_field("at_us").and_then(Value::as_u64) else {
            self.violate("A000", line, "missing integer `at_us`".to_string());
            return;
        };
        if self.last_at_us.is_some_and(|prev| at_us < prev) {
            self.violate(
                "A000",
                line,
                format!(
                    "time went backwards: at_us {at_us} after {:?}",
                    self.last_at_us
                ),
            );
        }
        self.last_at_us = Some(at_us);
        let Some(kind) = event.get_field("kind").and_then(Value::as_str) else {
            self.violate("A000", line, "missing string `kind`".to_string());
            return;
        };
        let kind = kind.to_string();

        if self.topology.is_none() && kind != "topology" {
            self.violate(
                "A000",
                line,
                format!("`{kind}` before the topology preamble"),
            );
            return;
        }

        // A pending server change must be confirmed by the very next
        // event (the service emits the switch immediately).
        if let Some(p) = self.pending_switch.take() {
            if kind != "switch" {
                self.violate(
                    "A006",
                    line,
                    format!(
                        "selection moved session {} from {} to {} but the next event is `{kind}`, not a switch",
                        p.session, p.from, p.to
                    ),
                );
            } else {
                self.check_switch(line, event, &p);
                return;
            }
        } else if kind == "switch" {
            self.violate(
                "A006",
                line,
                "switch without a preceding server-changing selection".to_string(),
            );
            return;
        }

        // A016: the prefix store evicts and admits inside one decision,
        // so a run of prefix_evict events must lead straight into the
        // prefix_admit that caused it.
        if !self.prefix_pending_evicts.is_empty()
            && kind != "prefix_evict"
            && kind != "prefix_admit"
        {
            for p in std::mem::take(&mut self.prefix_pending_evicts) {
                self.violate(
                    "A016",
                    p.line,
                    format!(
                        "prefix eviction of v{} at proxy {} is followed by `{kind}`, not its admission",
                        p.victim, p.server
                    ),
                );
            }
        }

        let handled = match kind.as_str() {
            "topology" => self.on_topology(line, event),
            "run_config" => self.on_run_config(event),
            "cache_config" => self.on_cache_config(event),
            "dma_seed" => self.on_dma_seed(line, event),
            "catalog_add" => self.on_catalog(line, event, true),
            "catalog_remove" => self.on_catalog(line, event, false),
            "link_state" => self.on_link_state(line, event),
            "dma_hit" => self.on_dma_hit(line, event),
            "dma_admit" => self.on_dma_admit(line, event),
            "dma_evict" => self.on_dma_evict(line, event),
            "dma_reject" => self.on_dma_reject(line, event),
            "prefix_cache_config" => self.on_prefix_config(event),
            "prefix_hit" => self.on_prefix_hit(line, event),
            "prefix_extend" => self.on_prefix_extend(line, event),
            "prefix_admit" => self.on_prefix_admit(line, event),
            "prefix_evict" => self.on_prefix_evict(line, event),
            "prefix_reject" => self.on_prefix_reject(line, event),
            "prefix_serve" => self.on_prefix_serve(line, event),
            "vra_select" => self.on_vra_select(line, event),
            "link_down" => self.on_link_down(line, event),
            "link_up" => self.on_link_up(line, event),
            "session_retry" => self.on_session_retry(line, event),
            "session_complete" => {
                if let Some(s) = event.get_field("session").and_then(Value::as_u64) {
                    self.sessions.remove(&s);
                    self.retries.remove(&s);
                }
                Some(())
            }
            "session_aborted" => self.on_session_aborted(line, event),
            "server_down" => {
                if let Some(s) = event.get_field("server").and_then(Value::as_u64) {
                    // The cache is retired with the server; a recovering
                    // server starts cold (fresh points, empty disks).
                    if let Some(state) = self.servers.get_mut(&s) {
                        state.residents.clear();
                        state.points.clear();
                    }
                    if let Some(state) = self.prefixes.get_mut(&s) {
                        state.residents.clear();
                        state.points.clear();
                    }
                }
                Some(())
            }
            k if UNAUDITED.contains(&k) => Some(()),
            // Unknown kinds are tolerated for forward compatibility:
            // a trace from a newer writer must still replay under the
            // invariants this auditor does know. (The analyzer's L012
            // drift rule guarantees every *workspace* Event variant is
            // either dispatched above or acknowledged in UNAUDITED.)
            _ => Some(()),
        };
        if handled.is_none() {
            self.violate(
                "A000",
                line,
                format!("`{kind}` event is missing required fields"),
            );
        }
    }

    fn on_topology(&mut self, line: usize, event: &Value) -> Option<()> {
        if self.topology.is_some() {
            self.violate("A000", line, "duplicate topology preamble".to_string());
            return Some(());
        }
        let nodes = event.get_field("nodes")?.as_array()?;
        let links = event.get_field("links")?.as_array()?;
        let mut b = TopologyBuilder::new();
        for n in nodes {
            let pair = n.as_array()?;
            let name = pair.first()?.as_str()?;
            let is_server = pair.get(1)?.as_bool()?;
            let kind = if is_server {
                NodeKind::VideoServer
            } else {
                NodeKind::Transit
            };
            b.add_node_with_kind(name, kind);
        }
        let mut capacities = Vec::with_capacity(links.len());
        for l in links {
            let triple = l.as_array()?;
            let from = triple.first()?.as_u64()?;
            let to = triple.get(1)?.as_u64()?;
            let cap = triple.get(2)?.as_f64()?;
            let (Ok(from), Ok(to)) = (u32::try_from(from), u32::try_from(to)) else {
                return None;
            };
            let mbps = Mbps::try_new(cap)?;
            if b.add_link(NodeId::new(from), NodeId::new(to), mbps)
                .is_err()
            {
                self.violate("A000", line, "topology link is malformed".to_string());
                return Some(());
            }
            capacities.push(cap);
        }
        self.topology = Some(b.build());
        self.link_capacities = capacities;
        Some(())
    }

    fn on_run_config(&mut self, event: &Value) -> Option<()> {
        self.saw_run_config = true;
        self.lvn_normalization = event.get_field("lvn_normalization").and_then(Value::as_f64);
        self.retry_max_attempts = event
            .get_field("retry_max_attempts")
            .and_then(Value::as_u64);
        Some(())
    }

    fn on_cache_config(&mut self, event: &Value) -> Option<()> {
        let server = event.get_field("server")?.as_u64()?;
        let state = ServerState {
            disks: event.get_field("disks")?.as_u64()?,
            capacity_mb: event.get_field("capacity_mb")?.as_f64()?,
            cluster_mb: event.get_field("cluster_mb")?.as_f64()?,
            admit_threshold: event.get_field("admit_threshold")?.as_u64()?,
            residents: BTreeMap::new(),
            points: BTreeMap::new(),
        };
        self.servers.insert(server, state);
        Some(())
    }

    fn on_dma_seed(&mut self, line: usize, event: &Value) -> Option<()> {
        let server = event.get_field("server")?.as_u64()?;
        let video = event.get_field("video")?.as_u64()?;
        let size_mb = event.get_field("size_mb")?.as_f64()?;
        let mut pending = Vec::new();
        let Some(state) = self.servers.get_mut(&server) else {
            self.violate(
                "A009",
                line,
                format!("seed on unconfigured server {server}"),
            );
            return Some(());
        };
        if state.residents.insert(video, size_mb).is_some() {
            pending.push(("A009", format!("video {video} seeded twice on {server}")));
        }
        let (occ, cap) = (state.occupancy(), state.total_capacity());
        if occ > cap + EPS {
            pending.push((
                "A001",
                format!("seeding overflows server {server}: {occ:.3} MB > {cap:.3} MB"),
            ));
        }
        self.flush(line, pending);
        if !self.catalog.insert((server, video)) {
            self.violate(
                "A009",
                line,
                format!("seed re-advertises v{video} at {server}"),
            );
        }
        Some(())
    }

    fn on_catalog(&mut self, line: usize, event: &Value, add: bool) -> Option<()> {
        let server = event.get_field("server")?.as_u64()?;
        let video = event.get_field("video")?.as_u64()?;
        if add && !self.catalog.insert((server, video)) {
            self.violate(
                "A009",
                line,
                format!("catalog_add of already-advertised v{video} at server {server}"),
            );
        }
        if !add && !self.catalog.remove(&(server, video)) {
            self.violate(
                "A009",
                line,
                format!("catalog_remove of unadvertised v{video} at server {server}"),
            );
        }
        Some(())
    }

    fn on_link_state(&mut self, line: usize, event: &Value) -> Option<()> {
        let used = event.get_field("used")?.as_array()?;
        let utilization = event.get_field("utilization")?.as_array()?;
        // Traces predating the fault layer omit `down`; that reads as an
        // empty outage set, which A010 then checks against the replay.
        let down_listed: BTreeSet<u64> = match event.get_field("down") {
            Some(v) => v
                .as_array()?
                .iter()
                .map(Value::as_u64)
                .collect::<Option<BTreeSet<u64>>>()?,
            None => BTreeSet::new(),
        };
        if down_listed != self.down_links {
            self.violate(
                "A010",
                line,
                format!(
                    "link_state lists down links {:?} but replayed outage windows say {:?}",
                    down_listed.iter().collect::<Vec<_>>(),
                    self.down_links.iter().collect::<Vec<_>>()
                ),
            );
        }
        let topo = self.topology.as_ref()?;
        if used.len() != self.link_capacities.len() || utilization.len() != used.len() {
            self.violate(
                "A000",
                line,
                format!(
                    "link_state has {} used / {} utilization entries for {} links",
                    used.len(),
                    utilization.len(),
                    self.link_capacities.len()
                ),
            );
            return Some(());
        }
        let mut snap = TrafficSnapshot::zero(topo);
        let mut violations: Vec<String> = Vec::new();
        for (i, (u, f)) in used.iter().zip(utilization).enumerate() {
            let (u, f) = (u.as_f64()?, f.as_f64()?);
            let cap = self.link_capacities[i];
            if !u.is_finite() || u < -EPS {
                violations.push(format!("link {i}: negative used bandwidth {u}"));
            } else if u > cap + EPS {
                violations.push(format!(
                    "link {i}: used {u} Mbps exceeds capacity {cap} Mbps (negative residual)"
                ));
            }
            if !f.is_finite() || f < -EPS {
                violations.push(format!("link {i}: negative utilization {f}"));
            }
            let link = LinkId::new(i as u32);
            if let Some(mbps) = Mbps::try_new(u.max(0.0)) {
                snap.set_used(link, mbps);
            }
            if let Some(fraction) = Fraction::try_new(f.max(0.0)) {
                snap.set_explicit_utilization(link, fraction);
            }
        }
        for v in violations {
            self.violate("A008", line, v);
        }
        // Mask down links on the replay snapshot so the A005 reference
        // Dijkstra refuses to route over them, exactly like the service.
        for &l in &down_listed {
            if (l as usize) < self.link_capacities.len() {
                snap.set_admin_down(LinkId::new(l as u32), true);
            }
        }
        self.snapshot = Some(snap);
        Some(())
    }

    /// A010: a `link_down` opens an outage; the service emits it only on
    /// the 0 → 1 depth edge, so seeing a link go down twice is a bug.
    fn on_link_down(&mut self, line: usize, event: &Value) -> Option<()> {
        let link = event.get_field("link")?.as_u64()?;
        if link as usize >= self.link_capacities.len() {
            self.violate("A010", line, format!("link_down names unknown link {link}"));
            return Some(());
        }
        if !self.down_links.insert(link) {
            self.violate(
                "A010",
                line,
                format!("link {link} went down twice without coming back up"),
            );
        }
        Some(())
    }

    /// A010: a `link_up` must close a previously-opened outage.
    fn on_link_up(&mut self, line: usize, event: &Value) -> Option<()> {
        let link = event.get_field("link")?.as_u64()?;
        if !self.down_links.remove(&link) {
            self.violate(
                "A010",
                line,
                format!("link {link} came up without a matching link_down"),
            );
        }
        Some(())
    }

    /// A011: retry attempts are 1-based, step by one within a failure
    /// episode (a successful relaunch resets the counter), and never
    /// exceed the configured budget.
    fn on_session_retry(&mut self, line: usize, event: &Value) -> Option<()> {
        let session = event.get_field("session")?.as_u64()?;
        let attempt = event.get_field("attempt")?.as_u64()?;
        event.get_field("backoff_us")?.as_u64()?;
        let prev = self.retries.get(&session).copied();
        if attempt == 0 {
            self.violate(
                "A011",
                line,
                format!("session {session} retries with attempt 0 (attempts are 1-based)"),
            );
        } else if attempt != 1 && prev.is_none_or(|p| attempt != p + 1) {
            self.violate(
                "A011",
                line,
                format!("session {session} jumps to retry attempt {attempt} (previous: {prev:?})"),
            );
        }
        match self.retry_max_attempts {
            Some(max) if attempt > max => {
                self.violate(
                    "A011",
                    line,
                    format!(
                        "session {session} retry attempt {attempt} exceeds the configured budget {max}"
                    ),
                );
            }
            None => {
                self.violate(
                    "A011",
                    line,
                    format!(
                        "session {session} retries but the run config declares no retry budget"
                    ),
                );
            }
            _ => {}
        }
        self.retries.insert(session, attempt);
        Some(())
    }

    /// A012: abort reasons come from a closed set and agree with the
    /// configured retry budget and the session's observed retries.
    fn on_session_aborted(&mut self, line: usize, event: &Value) -> Option<()> {
        let session = event.get_field("session")?.as_u64()?;
        let reason = event.get_field("reason")?.as_str()?.to_string();
        let max = self.retry_max_attempts;
        let last = self.retries.get(&session).copied();
        match reason.as_str() {
            "home_down" => {}
            "no_source" => {
                if let Some(m) = max.filter(|&m| m > 0) {
                    self.violate(
                        "A012",
                        line,
                        format!(
                            "session {session} aborted `no_source` although the retry budget is {m}"
                        ),
                    );
                }
            }
            "retry_exhausted" => match max {
                Some(m) if m > 0 => {
                    if last != Some(m) {
                        self.violate(
                            "A012",
                            line,
                            format!(
                                "session {session} aborted `retry_exhausted` after {last:?} retries (budget {m})"
                            ),
                        );
                    }
                }
                _ => {
                    self.violate(
                        "A012",
                        line,
                        format!(
                            "session {session} aborted `retry_exhausted` with no retry budget configured"
                        ),
                    );
                }
            },
            "stall_budget" => {
                if max.is_none_or(|m| m == 0) {
                    self.violate(
                        "A012",
                        line,
                        format!(
                            "session {session} aborted `stall_budget` with no retry budget configured"
                        ),
                    );
                }
            }
            other => {
                self.violate(
                    "A012",
                    line,
                    format!("session {session} aborted with unknown reason `{other}`"),
                );
            }
        }
        self.sessions.remove(&session);
        self.retries.remove(&session);
        Some(())
    }

    fn on_dma_hit(&mut self, line: usize, event: &Value) -> Option<()> {
        let server = event.get_field("server")?.as_u64()?;
        let video = event.get_field("video")?.as_u64()?;
        let Some(state) = self.servers.get_mut(&server) else {
            self.violate(
                "A009",
                line,
                format!("dma_hit on unconfigured server {server}"),
            );
            return Some(());
        };
        state.award(video);
        let resident = state.residents.contains_key(&video);
        if !resident {
            self.violate(
                "A009",
                line,
                format!("dma_hit for v{video} which is not resident on server {server}"),
            );
        }
        Some(())
    }

    fn on_dma_admit(&mut self, line: usize, event: &Value) -> Option<()> {
        let server = event.get_field("server")?.as_u64()?;
        let video = event.get_field("video")?.as_u64()?;
        let size_mb = event.get_field("size_mb")?.as_f64()?;
        let parts = event.get_field("parts")?.as_u64()?;
        let stripe = event.get_field("stripe")?.as_array()?;
        let occupancy_mb = event.get_field("occupancy_mb")?.as_f64()?;
        self.summary.admits_verified += 1;
        let mut pending = Vec::new();
        let Some(state) = self.servers.get_mut(&server) else {
            self.violate(
                "A009",
                line,
                format!("dma_admit on unconfigured server {server}"),
            );
            return Some(());
        };

        // Figure 2: the request awards a point first; admission requires
        // the counter to exceed the threshold.
        let points = state.award(video);
        if points <= state.admit_threshold {
            pending.push((
                "A002",
                format!(
                    "v{video} admitted at server {server} with {points} points (threshold {})",
                    state.admit_threshold
                ),
            ));
        }

        // Figure 3: `ceil(size/cluster)` parts, part i on disk i mod n.
        let expected_parts = (size_mb / state.cluster_mb).ceil().max(1.0) as u64;
        if parts != expected_parts || stripe.len() as u64 != parts {
            pending.push((
                "A004",
                format!(
                    "v{video} striped into {parts} parts (stripe lists {}), expected {expected_parts}",
                    stripe.len()
                ),
            ));
        }
        for (i, disk) in stripe.iter().enumerate() {
            let Some(disk) = disk.as_u64() else {
                self.flush(line, pending);
                return None;
            };
            if state.disks > 0 && disk != i as u64 % state.disks {
                pending.push((
                    "A004",
                    format!(
                        "part {i} of v{video} on disk {disk}, expected {} (i mod {})",
                        i as u64 % state.disks,
                        state.disks
                    ),
                ));
                break;
            }
        }

        if state.residents.insert(video, size_mb).is_some() {
            pending.push((
                "A009",
                format!("v{video} admitted while already resident on server {server}"),
            ));
        }
        let (occ, cap) = (state.occupancy(), state.total_capacity());
        if occ > cap + EPS {
            pending.push((
                "A001",
                format!("server {server} over capacity after admit: {occ:.3} MB > {cap:.3} MB"),
            ));
        }
        if (occ - occupancy_mb).abs() > EPS * occ.abs().max(1.0) {
            pending.push((
                "A001",
                format!(
                    "traced occupancy {occupancy_mb:.3} MB disagrees with replayed {occ:.3} MB on server {server}"
                ),
            ));
        }
        self.flush(line, pending);
        Some(())
    }

    fn on_dma_evict(&mut self, line: usize, event: &Value) -> Option<()> {
        let server = event.get_field("server")?.as_u64()?;
        let victim = event.get_field("victim")?.as_u64()?;
        self.summary.evictions_verified += 1;
        let mut pending = Vec::new();
        let Some(state) = self.servers.get_mut(&server) else {
            self.violate(
                "A009",
                line,
                format!("dma_evict on unconfigured server {server}"),
            );
            return Some(());
        };
        match state.least_popular() {
            Some(expected) if expected != victim => {
                let vp = state.points.get(&victim).copied().unwrap_or(0);
                let ep = state.points.get(&expected).copied().unwrap_or(0);
                pending.push((
                    "A003",
                    format!(
                        "evicted v{victim} ({vp} points) but v{expected} ({ep} points) is less popular on server {server}"
                    ),
                ));
            }
            None => {
                pending.push((
                    "A003",
                    format!("eviction from server {server} with no residents"),
                ));
            }
            _ => {}
        }
        if state.residents.remove(&victim).is_none() {
            pending.push((
                "A009",
                format!("evicted v{victim} was not resident on server {server}"),
            ));
        }
        self.flush(line, pending);
        Some(())
    }

    fn on_dma_reject(&mut self, line: usize, event: &Value) -> Option<()> {
        let server = event.get_field("server")?.as_u64()?;
        let video = event.get_field("video")?.as_u64()?;
        let reason = event.get_field("reason")?.as_str()?.to_string();
        let Some(state) = self.servers.get_mut(&server) else {
            self.violate(
                "A009",
                line,
                format!("dma_reject on unconfigured server {server}"),
            );
            return Some(());
        };
        let points = state.award(video);
        let threshold = state.admit_threshold;
        // `state` is no longer needed; the checks below only read the
        // two values extracted above.
        // Figure 2's gates run in order: a below-threshold verdict means
        // the counter had not yet passed, any later verdict means it had.
        if reason == "below_threshold" && points > threshold {
            self.violate(
                "A002",
                line,
                format!(
                    "v{video} rejected below-threshold at {points} points (> threshold {threshold})"
                ),
            );
        }
        if reason != "below_threshold" && points <= threshold {
            self.violate(
                "A002",
                line,
                format!(
                    "v{video} reached the `{reason}` gate with only {points} points (threshold {threshold})"
                ),
            );
        }
        Some(())
    }

    fn on_prefix_config(&mut self, event: &Value) -> Option<()> {
        let server = event.get_field("server")?.as_u64()?;
        let state = PrefixState {
            capacity_mb: event.get_field("capacity_mb")?.as_f64()?,
            cluster_mb: event.get_field("cluster_mb")?.as_f64()?,
            admit_threshold: event.get_field("admit_threshold")?.as_u64()?,
            base_clusters: event.get_field("base_clusters")?.as_u64()?,
            max_clusters: event.get_field("max_clusters")?.as_u64()?,
            growth_points: event.get_field("growth_points")?.as_u64()?,
            residents: BTreeMap::new(),
            points: BTreeMap::new(),
        };
        self.prefixes.insert(server, state);
        Some(())
    }

    /// A014: a prefix hit names a resident prefix and serves its exact
    /// replayed length. Awards the decision's popularity point.
    fn on_prefix_hit(&mut self, line: usize, event: &Value) -> Option<()> {
        let server = event.get_field("server")?.as_u64()?;
        let video = event.get_field("video")?.as_u64()?;
        let clusters = event.get_field("clusters")?.as_u64()?;
        self.summary.prefix_verified += 1;
        let Some(state) = self.prefixes.get_mut(&server) else {
            self.violate(
                "A014",
                line,
                format!("prefix_hit on unconfigured proxy {server}"),
            );
            return Some(());
        };
        state.award(video);
        match state.residents.get(&video) {
            Some(&(resident, _)) if resident != clusters => {
                self.violate(
                    "A014",
                    line,
                    format!(
                        "prefix_hit serves {clusters} clusters of v{video} but the replayed prefix is {resident} clusters"
                    ),
                );
            }
            None => {
                self.violate(
                    "A014",
                    line,
                    format!("prefix_hit for v{video} which is not resident at proxy {server}"),
                );
            }
            _ => {}
        }
        Some(())
    }

    /// A014/A015: an in-place extension grows a resident prefix toward
    /// the popularity target without exceeding capacity. Rides the
    /// point its accompanying `prefix_hit` already awarded.
    fn on_prefix_extend(&mut self, line: usize, event: &Value) -> Option<()> {
        let server = event.get_field("server")?.as_u64()?;
        let video = event.get_field("video")?.as_u64()?;
        let from = event.get_field("from_clusters")?.as_u64()?;
        let to = event.get_field("to_clusters")?.as_u64()?;
        let occupancy_mb = event.get_field("occupancy_mb")?.as_f64()?;
        let mut pending = Vec::new();
        let Some(state) = self.prefixes.get_mut(&server) else {
            self.violate(
                "A014",
                line,
                format!("prefix_extend on unconfigured proxy {server}"),
            );
            return Some(());
        };
        let points = state.points.get(&video).copied().unwrap_or(0);
        if to <= from {
            pending.push((
                "A015",
                format!("prefix_extend of v{video} does not grow the prefix ({from} → {to})"),
            ));
        }
        if to > state.target_clusters(points) {
            pending.push((
                "A015",
                format!(
                    "v{video} extended to {to} clusters, beyond the popularity target {} at {points} points",
                    state.target_clusters(points)
                ),
            ));
        }
        let before = state.occupancy();
        match state.residents.get(&video).copied() {
            Some((resident, mb)) => {
                if resident != from {
                    pending.push((
                        "A014",
                        format!(
                            "prefix_extend starts from {from} clusters but the replayed prefix of v{video} is {resident}"
                        ),
                    ));
                }
                let delta = occupancy_mb - before;
                let grown = to.saturating_sub(from) as f64 * state.cluster_mb;
                if delta <= 0.0 || delta > grown + EPS {
                    pending.push((
                        "A015",
                        format!(
                            "extension of v{video} by {} clusters changed occupancy by {delta:.3} MB (cluster size {} MB)",
                            to.saturating_sub(from),
                            state.cluster_mb
                        ),
                    ));
                }
                state.residents.insert(video, (to, mb + delta));
            }
            None => {
                pending.push((
                    "A014",
                    format!("prefix_extend of v{video} which is not resident at proxy {server}"),
                ));
            }
        }
        if occupancy_mb > state.capacity_mb + EPS {
            pending.push((
                "A014",
                format!(
                    "proxy {server} over capacity after extension: {occupancy_mb:.3} MB > {:.3} MB",
                    state.capacity_mb
                ),
            ));
        }
        self.flush(line, pending);
        Some(())
    }

    /// A014/A015/A016: an admission stores a popularity-sized prefix
    /// within capacity, above the threshold, and settles any pending
    /// evictions (whose victims must be strictly colder).
    fn on_prefix_admit(&mut self, line: usize, event: &Value) -> Option<()> {
        let server = event.get_field("server")?.as_u64()?;
        let video = event.get_field("video")?.as_u64()?;
        let after_eviction = event.get_field("after_eviction")?.as_bool()?;
        let clusters = event.get_field("clusters")?.as_u64()?;
        let size_mb = event.get_field("size_mb")?.as_f64()?;
        let occupancy_mb = event.get_field("occupancy_mb")?.as_f64()?;
        self.summary.prefix_verified += 1;
        let mut pending = Vec::new();

        let evicted = std::mem::take(&mut self.prefix_pending_evicts);
        if after_eviction && evicted.is_empty() {
            pending.push((
                "A016",
                format!("v{video} admitted `after_eviction` with no preceding prefix_evict"),
            ));
        }
        if !after_eviction && !evicted.is_empty() {
            pending.push((
                "A016",
                format!(
                    "v{video} admitted without `after_eviction` despite {} pending eviction(s)",
                    evicted.len()
                ),
            ));
        }

        let Some(state) = self.prefixes.get_mut(&server) else {
            self.violate(
                "A014",
                line,
                format!("prefix_admit on unconfigured proxy {server}"),
            );
            return Some(());
        };
        let points = state.award(video);
        if points <= state.admit_threshold {
            pending.push((
                "A015",
                format!(
                    "v{video} admitted at proxy {server} with {points} points (threshold {})",
                    state.admit_threshold
                ),
            ));
        }
        if clusters == 0 || clusters > state.target_clusters(points) {
            pending.push((
                "A015",
                format!(
                    "v{video} stored as {clusters} clusters, outside (0, target {}] at {points} points",
                    state.target_clusters(points)
                ),
            ));
        }
        // `clusters` full clusters except possibly the title's own
        // partial trailing one: (clusters−1)·c < size ≤ clusters·c.
        let c = state.cluster_mb;
        if size_mb <= clusters.saturating_sub(1) as f64 * c - EPS
            || size_mb > clusters as f64 * c + EPS
        {
            pending.push((
                "A015",
                format!(
                    "a {clusters}-cluster prefix of v{video} occupies {size_mb:.3} MB (cluster size {c} MB)"
                ),
            ));
        }
        for e in &evicted {
            if e.server != server {
                pending.push((
                    "A016",
                    format!(
                        "pending eviction at proxy {} settled by an admission at proxy {server}",
                        e.server
                    ),
                ));
            } else if e.victim_points >= points {
                pending.push((
                    "A016",
                    format!(
                        "evicted v{} ({} points) was not strictly colder than admitted v{video} ({points} points)",
                        e.victim, e.victim_points
                    ),
                ));
            }
        }
        if state.residents.insert(video, (clusters, size_mb)).is_some() {
            pending.push((
                "A014",
                format!("v{video} admitted while its prefix is already resident at proxy {server}"),
            ));
        }
        let (occ, cap) = (state.occupancy(), state.capacity_mb);
        if occ > cap + EPS {
            pending.push((
                "A014",
                format!("proxy {server} over capacity after admit: {occ:.3} MB > {cap:.3} MB"),
            ));
        }
        if (occ - occupancy_mb).abs() > EPS * occ.abs().max(1.0) {
            pending.push((
                "A014",
                format!(
                    "traced prefix occupancy {occupancy_mb:.3} MB disagrees with replayed {occ:.3} MB at proxy {server}"
                ),
            ));
        }
        self.flush(line, pending);
        Some(())
    }

    /// A016: the victim is the least-popular resident (ties to the
    /// lowest id) and frees exactly its replayed footprint.
    fn on_prefix_evict(&mut self, line: usize, event: &Value) -> Option<()> {
        let server = event.get_field("server")?.as_u64()?;
        let victim = event.get_field("victim")?.as_u64()?;
        let freed_mb = event.get_field("freed_mb")?.as_f64()?;
        self.summary.prefix_verified += 1;
        let mut pending = Vec::new();
        let Some(state) = self.prefixes.get_mut(&server) else {
            self.violate(
                "A014",
                line,
                format!("prefix_evict on unconfigured proxy {server}"),
            );
            return Some(());
        };
        match state.least_popular() {
            Some(expected) if expected != victim => {
                let vp = state.points.get(&victim).copied().unwrap_or(0);
                let ep = state.points.get(&expected).copied().unwrap_or(0);
                pending.push((
                    "A016",
                    format!(
                        "evicted prefix of v{victim} ({vp} points) but v{expected} ({ep} points) is less popular at proxy {server}"
                    ),
                ));
            }
            None => {
                pending.push((
                    "A016",
                    format!("prefix eviction at proxy {server} with no residents"),
                ));
            }
            _ => {}
        }
        let victim_points = state.points.get(&victim).copied().unwrap_or(0);
        match state.residents.remove(&victim) {
            Some((_, mb)) => {
                if (mb - freed_mb).abs() > EPS * mb.abs().max(1.0) {
                    pending.push((
                        "A016",
                        format!(
                            "eviction of v{victim} claims {freed_mb:.3} MB freed but the replayed prefix occupied {mb:.3} MB"
                        ),
                    ));
                }
            }
            None => {
                pending.push((
                    "A014",
                    format!("evicted prefix of v{victim} was not resident at proxy {server}"),
                ));
            }
        }
        self.prefix_pending_evicts.push(PendingPrefixEvict {
            line,
            server,
            victim,
            victim_points,
        });
        self.flush(line, pending);
        Some(())
    }

    /// A014/A015: reject reasons respect the Figure-2-style gate order
    /// and never name a resident prefix.
    fn on_prefix_reject(&mut self, line: usize, event: &Value) -> Option<()> {
        let server = event.get_field("server")?.as_u64()?;
        let video = event.get_field("video")?.as_u64()?;
        let reason = event.get_field("reason")?.as_str()?.to_string();
        self.summary.prefix_verified += 1;
        let mut pending = Vec::new();
        let Some(state) = self.prefixes.get_mut(&server) else {
            self.violate(
                "A014",
                line,
                format!("prefix_reject on unconfigured proxy {server}"),
            );
            return Some(());
        };
        let points = state.award(video);
        let threshold = state.admit_threshold;
        if state.residents.contains_key(&video) {
            pending.push((
                "A014",
                format!("prefix_reject of v{video} whose prefix is resident at proxy {server}"),
            ));
        }
        if reason == "below_threshold" && points > threshold {
            pending.push((
                "A015",
                format!(
                    "v{video} rejected below-threshold at {points} points (> threshold {threshold})"
                ),
            ));
        }
        if reason != "below_threshold" && points <= threshold {
            pending.push((
                "A015",
                format!(
                    "v{video} reached the `{reason}` gate with only {points} points (threshold {threshold})"
                ),
            ));
        }
        // The eviction scan only considers strictly-colder residents:
        // `not_popular_enough` means there were none, `does_not_fit`
        // means there were some but they were too small.
        let colder = state
            .residents
            .keys()
            .any(|v| state.points.get(v).copied().unwrap_or(0) < points);
        if reason == "not_popular_enough" && colder {
            pending.push((
                "A016",
                format!(
                    "v{video} rejected `not_popular_enough` although a strictly colder prefix is resident at proxy {server}"
                ),
            ));
        }
        if reason == "does_not_fit" && !colder {
            pending.push((
                "A016",
                format!(
                    "v{video} rejected `does_not_fit` with no strictly colder resident to evict at proxy {server}"
                ),
            ));
        }
        self.flush(line, pending);
        Some(())
    }

    /// A014 + session registration: a proxy serves at most the resident
    /// prefix length, and the serve opens the session's cluster
    /// bookkeeping so the suffix selection (A006/A007) continues from
    /// the prefix boundary.
    fn on_prefix_serve(&mut self, line: usize, event: &Value) -> Option<()> {
        let session = event.get_field("session")?.as_u64()?;
        let server = event.get_field("server")?.as_u64()?;
        let video = event.get_field("video")?.as_u64()?;
        let clusters = event.get_field("clusters")?.as_u64()?;
        let mut pending = Vec::new();
        if clusters == 0 {
            pending.push((
                "A014",
                format!("prefix_serve of 0 clusters to session {session}"),
            ));
        }
        match self.prefixes.get(&server) {
            Some(state) => match state.residents.get(&video) {
                Some(&(resident, _)) if clusters > resident => {
                    pending.push((
                        "A014",
                        format!(
                            "session {session} served {clusters} prefix clusters of v{video} but only {resident} are resident at proxy {server}"
                        ),
                    ));
                }
                None => {
                    pending.push((
                        "A014",
                        format!("prefix_serve of v{video} which is not resident at proxy {server}"),
                    ));
                }
                _ => {}
            },
            None => {
                pending.push((
                    "A014",
                    format!("prefix_serve on unconfigured proxy {server}"),
                ));
            }
        }
        match self.sessions.entry(session) {
            std::collections::btree_map::Entry::Occupied(_) => {
                pending.push((
                    "A007",
                    format!("prefix_serve for session {session} which is already streaming"),
                ));
            }
            std::collections::btree_map::Entry::Vacant(slot) if clusters > 0 => {
                // The proxy delivers clusters 0..clusters; the session's
                // next selection continues at the prefix boundary.
                slot.insert((server, clusters - 1, video));
            }
            std::collections::btree_map::Entry::Vacant(_) => {}
        }
        self.flush(line, pending);
        Some(())
    }

    fn on_vra_select(&mut self, line: usize, event: &Value) -> Option<()> {
        let session = event.get_field("session")?.as_u64()?;
        let cluster = event.get_field("cluster")?.as_u64()?;
        let video = event.get_field("video")?.as_u64()?;
        let home = event.get_field("home")?.as_u64()?;
        let server = event.get_field("server")?.as_u64()?;
        let cost = event.get_field("cost")?.as_f64()?;
        let local = event.get_field("local")?.as_bool()?;

        // A007: cluster bookkeeping per session.
        match self.sessions.get(&session) {
            None => {
                if cluster != 0 {
                    self.violate(
                        "A007",
                        line,
                        format!("session {session} opens at cluster {cluster}, expected 0"),
                    );
                }
            }
            Some(&(_, prev_cluster, prev_video)) => {
                if cluster != prev_cluster && cluster != prev_cluster + 1 {
                    self.violate(
                        "A007",
                        line,
                        format!("session {session} jumps from cluster {prev_cluster} to {cluster}"),
                    );
                }
                if video != prev_video {
                    self.violate(
                        "A007",
                        line,
                        format!(
                            "session {session} switched title v{prev_video} → v{video} mid-stream"
                        ),
                    );
                }
            }
        }

        // A009: the chosen server must advertise the title.
        if !self.catalog.contains(&(server, video)) {
            self.violate(
                "A009",
                line,
                format!("selected server {server} does not advertise v{video}"),
            );
        }
        if local && server != home {
            self.violate(
                "A005",
                line,
                format!("selection flagged local but server {server} != home {home}"),
            );
        }

        // A005: re-derive the selection with a reference LVN + Dijkstra.
        // Selectors that do not route by the LVN argmin leave
        // `lvn_normalization` null in the preamble, which exempts them.
        if let Some(norm) = self.lvn_normalization {
            self.check_selection_optimal(line, video, home, server, cost, local, norm);
        }

        // A006: a server change must be announced by the next event.
        let prev_server = self.sessions.get(&session).map(|&(s, _, _)| s);
        if let Some(prev) = prev_server {
            if prev != server {
                self.pending_switch = Some(PendingSwitch {
                    line,
                    session,
                    cluster,
                    from: prev,
                    to: server,
                });
            }
        }
        self.sessions.insert(session, (server, cluster, video));
        Some(())
    }

    /// The reference re-derivation of one routed selection (Figure 5):
    /// LVN weights from the traced link state, Dijkstra from the home
    /// server, argmin over the advertising servers with ties to the
    /// lowest node id.
    #[allow(clippy::too_many_arguments)]
    fn check_selection_optimal(
        &mut self,
        line: usize,
        video: u64,
        home: u64,
        server: u64,
        cost: f64,
        local: bool,
        norm: f64,
    ) {
        self.summary.selections_verified += 1;
        let candidates: Vec<u64> = self
            .catalog
            .iter()
            .filter(|&&(_, v)| v == video)
            .map(|&(s, _)| s)
            .collect();
        if candidates.contains(&home) {
            if !local || server != home || cost != 0.0 {
                self.violate(
                    "A005",
                    line,
                    format!(
                        "home {home} advertises v{video} but the selection went to server {server} (cost {cost}) instead of serving locally"
                    ),
                );
            }
            return;
        }
        if local {
            self.violate(
                "A005",
                line,
                format!("selection flagged local but home {home} does not advertise v{video}"),
            );
            return;
        }
        let (Some(topo), Some(snap)) = (self.topology.as_ref(), self.snapshot.as_ref()) else {
            self.violate(
                "A000",
                line,
                "vra_select before any link_state event".to_string(),
            );
            return;
        };
        let Ok(src) = u32::try_from(home) else {
            self.violate("A000", line, format!("home {home} is not a node index"));
            return;
        };
        let params = LvnParams::with_normalization(norm);
        let weights = LvnComputer::new(topo, snap, params).weights();
        let paths = match dijkstra(topo, &weights, NodeId::new(src)) {
            Ok(p) => p,
            Err(e) => {
                self.violate("A005", line, format!("reference Dijkstra failed: {e}"));
                return;
            }
        };
        let best = candidates
            .iter()
            .filter_map(|&c| {
                let id = u32::try_from(c).ok()?;
                paths.route_to(NodeId::new(id)).map(|r| (c, r.cost()))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        match best {
            Some((ref_server, ref_cost)) => {
                let cost_ok = (cost - ref_cost).abs() <= EPS * ref_cost.abs().max(1.0);
                if server != ref_server || !cost_ok {
                    self.violate(
                        "A005",
                        line,
                        format!(
                            "selection (server {server}, cost {cost}) diverges from the reference optimum (server {ref_server}, cost {ref_cost})"
                        ),
                    );
                }
            }
            None => {
                self.violate(
                    "A005",
                    line,
                    format!(
                        "no advertising server of v{video} is reachable from home {home}, yet server {server} was selected"
                    ),
                );
            }
        }
    }

    fn check_switch(&mut self, line: usize, event: &Value, p: &PendingSwitch) {
        let session = event.get_field("session").and_then(Value::as_u64);
        let cluster = event.get_field("cluster").and_then(Value::as_u64);
        let from = event.get_field("from").and_then(Value::as_u64);
        let to = event.get_field("to").and_then(Value::as_u64);
        let (Some(session), Some(cluster), Some(from), Some(to)) = (session, cluster, from, to)
        else {
            self.violate(
                "A000",
                line,
                "switch event is missing required fields".to_string(),
            );
            return;
        };
        if session != p.session || cluster != p.cluster || from != p.from || to != p.to {
            self.violate(
                "A006",
                line,
                format!(
                    "switch (session {session}, cluster {cluster}, {from} → {to}) does not match the \
                     selection that caused it (session {}, cluster {}, {} → {})",
                    p.session, p.cluster, p.from, p.to
                ),
            );
        }
        if from == to {
            self.violate(
                "A006",
                line,
                format!("switch of session {session} to the same server {to}"),
            );
        }
    }
}
