//! `vod-check` — workspace lint pass and trace invariant auditor.
//!
//! ```text
//! vod-check lint  [--root DIR] [--allowlist FILE] [--json]
//! vod-check audit [--json] [--series SERIES.json] (--grnet | TRACE.jsonl ...)
//! ```
//!
//! `--series` reconciles a `--series` export (rule `A013`) against the
//! run's trace — the `--grnet` replay, or the single trace file given.
//!
//! Exit codes: 0 clean, 1 findings/violations, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vod_check::audit::{audit_trace, AuditSummary};
use vod_check::lint::{lint, workspace_sources, Allowlist, LintOutcome};
use vod_check::series::audit_series;
use vod_core::service::{ServiceConfig, VodService};
use vod_core::vra::Vra;
use vod_obs::JsonlWriter;
use vod_workload::scenario::Scenario;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("audit") => run_audit(&args[1..]),
        _ => {
            eprintln!(
                "usage: vod-check lint [--root DIR] [--allowlist FILE] [--json]\n\
                        vod-check audit [--json] [--series SERIES.json] (--grnet | TRACE.jsonl ...)"
            );
            ExitCode::from(2)
        }
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--allowlist" => match it.next() {
                Some(v) => allowlist = Some(PathBuf::from(v)),
                None => return usage("--allowlist needs a file"),
            },
            "--json" => json = true,
            other => return usage(&format!("unknown lint option `{other}`")),
        }
    }
    let allow_path = allowlist.unwrap_or_else(|| root.join("crates/check/lint_allow.txt"));
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };
    let files = match workspace_sources(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("vod-check: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let outcome = lint(&files, &allow);
    if json {
        print_lint_json(&outcome);
    } else {
        print_lint_human(&outcome, &allow_path);
    }
    if outcome.findings.is_empty() && outcome.unused_allow.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_lint_human(outcome: &LintOutcome, allow_path: &Path) {
    for f in &outcome.findings {
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule.code(), f.message);
    }
    for e in &outcome.unused_allow {
        println!(
            "{}: stale allowlist entry `{} {} {}` granted nothing",
            allow_path.display(),
            e.rule,
            e.path,
            e.needle
        );
    }
    println!(
        "vod-check lint: {} findings, {} stale allowlist entries across {} files",
        outcome.findings.len(),
        outcome.unused_allow.len(),
        outcome.files
    );
}

fn print_lint_json(outcome: &LintOutcome) {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in outcome.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":{},\"line\":{},\"message\":{}}}",
            f.rule.code(),
            json_string(&f.path),
            f.line,
            json_string(&f.message)
        ));
    }
    out.push_str("],\"unused_allow\":[");
    for (i, e) in outcome.unused_allow.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"path\":{},\"needle\":{}}}",
            json_string(&e.rule),
            json_string(&e.path),
            json_string(&e.needle)
        ));
    }
    out.push_str(&format!("],\"files\":{}}}", outcome.files));
    println!("{out}");
}

fn run_audit(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut grnet = false;
    let mut series: Option<PathBuf> = None;
    let mut traces: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--grnet" => grnet = true,
            "--series" => match it.next() {
                Some(v) => series = Some(PathBuf::from(v)),
                None => return usage("--series needs a file"),
            },
            other if other.starts_with("--") => {
                return usage(&format!("unknown audit option `{other}`"))
            }
            path => traces.push(PathBuf::from(path)),
        }
    }
    if !grnet && traces.is_empty() {
        return usage("audit needs --grnet or at least one trace file");
    }
    if series.is_some() && (traces.len() > 1 || (grnet && !traces.is_empty())) {
        return usage("--series reconciles against exactly one run (--grnet or one trace)");
    }
    let mut clean = true;
    let mut series_trace: Option<(String, String)> = None;
    if grnet {
        let text = grnet_case_study_trace();
        clean &= report_audit("grnet-case-study", &audit_trace(&text), json);
        series_trace = Some(("grnet-case-study".into(), text));
    }
    for path in traces {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("vod-check: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let label = path.display().to_string();
        clean &= report_audit(&label, &audit_trace(&text), json);
        series_trace = Some((label, text));
    }
    if let Some(series_path) = series {
        let series_text = match std::fs::read_to_string(&series_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("vod-check: cannot read {}: {e}", series_path.display());
                return ExitCode::from(2);
            }
        };
        let (trace_label, trace_text) =
            series_trace.expect("audit requires --grnet or a trace before this point");
        let label = format!("{} vs {trace_label}", series_path.display());
        clean &= report_series(&label, &audit_series(&series_text, &trace_text), json);
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Prints one series-reconciliation result; returns true when clean.
fn report_series(label: &str, summary: &vod_check::series::SeriesAuditSummary, json: bool) -> bool {
    if json {
        let mut out = format!(
            "{{\"series\":{},\"windows\":{},\"totals_verified\":{},\"violations\":[",
            json_string(label),
            summary.windows,
            summary.totals_verified
        );
        for (i, v) in summary.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"window\":{},\"message\":{}}}",
                v.rule,
                v.line,
                json_string(&v.message)
            ));
        }
        out.push_str("]}");
        println!("{out}");
    } else {
        for v in &summary.violations {
            println!("{label}:window {}: [{}] {}", v.line, v.rule, v.message);
        }
        println!(
            "vod-check audit {label}: {} windows, {} totals verified, {} violations",
            summary.windows,
            summary.totals_verified,
            summary.violations.len()
        );
    }
    summary.is_clean()
}

/// Runs the paper's GRNET case study (seed 42, VRA selector) with a
/// JSONL sink and returns the trace text.
fn grnet_case_study_trace() -> String {
    let scenario = Scenario::grnet_case_study(42);
    let sink = JsonlWriter::new(Vec::new());
    let service = VodService::with_sink(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig::default(),
        sink,
    );
    let (_, _, sink) = service.run_full();
    String::from_utf8(sink.into_inner()).unwrap_or_default()
}

/// Prints one audit result; returns true when the trace was clean.
fn report_audit(label: &str, summary: &AuditSummary, json: bool) -> bool {
    if json {
        let mut out = format!(
            "{{\"trace\":{},\"events\":{},\"selections_verified\":{},\"admits_verified\":{},\"evictions_verified\":{},\"violations\":[",
            json_string(label),
            summary.events,
            summary.selections_verified,
            summary.admits_verified,
            summary.evictions_verified
        );
        for (i, v) in summary.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"line\":{},\"message\":{}}}",
                v.rule,
                v.line,
                json_string(&v.message)
            ));
        }
        out.push_str("]}");
        println!("{out}");
    } else {
        for v in &summary.violations {
            println!("{label}:{}: [{}] {}", v.line, v.rule, v.message);
        }
        println!(
            "vod-check audit {label}: {} events, {} selections / {} admits / {} evictions verified, {} violations",
            summary.events,
            summary.selections_verified,
            summary.admits_verified,
            summary.evictions_verified,
            summary.violations.len()
        );
    }
    summary.is_clean()
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("vod-check: {msg}");
    ExitCode::from(2)
}
