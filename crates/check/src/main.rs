//! `vod-check` — workspace lint, semantic analyzer, and trace auditor.
//!
//! ```text
//! vod-check lint    [--root DIR] [--allowlist FILE] [--json]
//! vod-check analyze [--root DIR] [--allowlist FILE] [--json]
//! vod-check audit   [--json] [--series SERIES.json] (--grnet | TRACE.jsonl ...)
//! vod-check help
//! ```
//!
//! All three subcommands share one contract (`vod-check help` prints
//! it): exit 0 when clean, 1 when any finding was emitted, 2 on a
//! usage or I/O error, and `--json` emits a single object of the shape
//! `{"tool":...,"findings":[{"rule","where","line","message"}],"stats":{...}}`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use vod_check::analyze::analyze;
use vod_check::audit::{audit_trace, AuditSummary};
use vod_check::lint::{lint, workspace_sources, Allowlist, Finding, SourceFile};
use vod_check::series::audit_series;
use vod_core::service::{ServiceConfig, VodService};
use vod_core::vra::Vra;
use vod_obs::JsonlWriter;
use vod_workload::scenario::Scenario;

const HELP: &str = "vod-check — static analysis and trace auditing for the VoD workspace

USAGE:
    vod-check lint    [--root DIR] [--allowlist FILE] [--json]
    vod-check analyze [--root DIR] [--allowlist FILE] [--json]
    vod-check audit   [--json] [--series SERIES.json] (--grnet | TRACE.jsonl ...)
    vod-check help

SUBCOMMANDS:
    lint      Line-level source rules over crates/*/src (L001-L005):
              wall-clock reads, ambient RNG, unordered collections in
              report paths, panic hygiene, missing forbid(unsafe_code).
    analyze   Semantic rules (L006-L012): call-graph panic reachability
              from the sim hot-path roots, determinism dataflow (threads
              outside the batch engine, partial_cmp sort keys,
              Hash-without-Ord map keys), and Event-taxonomy drift
              across the series/span/audit consumers.
    audit     Replays a JSONL trace against reference implementations of
              the paper's invariants (A000-A016); --series reconciles a
              time-series export against the same run's trace (A013).

OPTIONS:
    --root DIR        Workspace root to scan (default: current directory).
    --allowlist FILE  Allowlist path (default: ROOT/crates/check/lint_allow.txt).
                      Lines are `RULE PATH NEEDLE`; lint owns L001-L005
                      entries, analyze owns L007/L008 entries, and a
                      stale entry is itself a finding (L000).
    --json            Emit one JSON object instead of human-readable text.
    --series FILE     (audit) Reconcile FILE against the run's trace.
    --grnet           (audit) Replay the paper's GRNET case study in-process.

JSON SHAPE (same for every subcommand):
    {\"tool\":\"lint|analyze|audit\",
     \"findings\":[{\"rule\":\"L006\",\"where\":\"crates/...\",\"line\":42,\"message\":\"...\"}],
     \"stats\":{...per-tool counters...}}
    `where` is a source path for lint/analyze, a trace or series label
    for audit. `line` is a source line, trace line, or window index.

EXIT CODES:
    0  clean — no findings
    1  at least one finding
    2  usage or I/O error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("analyze") => run_analyze(&args[1..]),
        Some("audit") => run_audit(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: vod-check lint    [--root DIR] [--allowlist FILE] [--json]\n\
                        vod-check analyze [--root DIR] [--allowlist FILE] [--json]\n\
                        vod-check audit   [--json] [--series SERIES.json] (--grnet | TRACE.jsonl ...)\n\
                 see `vod-check help` for the JSON shape and exit codes"
            );
            ExitCode::from(2)
        }
    }
}

/// One entry of the unified findings array shared by every subcommand.
struct UnifiedFinding {
    rule: String,
    location: String,
    line: usize,
    message: String,
}

impl UnifiedFinding {
    fn from_lint(f: &Finding) -> Self {
        UnifiedFinding {
            rule: f.rule.code().to_string(),
            location: f.path.clone(),
            line: f.line,
            message: f.message.clone(),
        }
    }
}

/// Prints the unified JSON object: findings array plus per-tool stats.
fn print_json(tool: &str, findings: &[UnifiedFinding], stats: &[(&str, usize)]) {
    let mut out = format!("{{\"tool\":{},\"findings\":[", json_string(tool));
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"where\":{},\"line\":{},\"message\":{}}}",
            json_string(&f.rule),
            json_string(&f.location),
            f.line,
            json_string(&f.message)
        ));
    }
    out.push_str("],\"stats\":{");
    for (i, (k, v)) in stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{v}", json_string(k)));
    }
    out.push_str("}}");
    println!("{out}");
}

fn verdict(findings: usize) -> ExitCode {
    if findings == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Shared `--root/--allowlist/--json` parsing and source loading for
/// the lint and analyze subcommands.
fn load_sources(
    args: &[String],
    cmd: &str,
) -> Result<(Vec<SourceFile>, Allowlist, PathBuf, bool), ExitCode> {
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return Err(usage("--root needs a directory")),
            },
            "--allowlist" => match it.next() {
                Some(v) => allowlist = Some(PathBuf::from(v)),
                None => return Err(usage("--allowlist needs a file")),
            },
            "--json" => json = true,
            other => return Err(usage(&format!("unknown {cmd} option `{other}`"))),
        }
    }
    let allow_path = allowlist.unwrap_or_else(|| root.join("crates/check/lint_allow.txt"));
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };
    let files = match workspace_sources(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("vod-check: cannot scan {}: {e}", root.display());
            return Err(ExitCode::from(2));
        }
    };
    Ok((files, allow, allow_path, json))
}

fn run_lint(args: &[String]) -> ExitCode {
    let (files, allow, allow_path, json) = match load_sources(args, "lint") {
        Ok(v) => v,
        Err(code) => return code,
    };
    let outcome = lint(&files, &allow);
    let findings: Vec<UnifiedFinding> = outcome
        .findings
        .iter()
        .map(UnifiedFinding::from_lint)
        .collect();
    if json {
        print_json(
            "lint",
            &findings,
            &[
                ("files", outcome.files),
                ("stale_allow", outcome.unused_allow.len()),
            ],
        );
    } else {
        print_findings_human(&findings);
        println!(
            "vod-check lint: {} findings ({} stale entries in {}) across {} files",
            findings.len(),
            outcome.unused_allow.len(),
            allow_path.display(),
            outcome.files
        );
    }
    verdict(findings.len())
}

fn run_analyze(args: &[String]) -> ExitCode {
    let (files, allow, allow_path, json) = match load_sources(args, "analyze") {
        Ok(v) => v,
        Err(code) => return code,
    };
    let outcome = analyze(&files, &allow);
    let findings: Vec<UnifiedFinding> = outcome
        .findings
        .iter()
        .map(UnifiedFinding::from_lint)
        .collect();
    if json {
        print_json(
            "analyze",
            &findings,
            &[
                ("files", outcome.files),
                ("fns", outcome.fns),
                ("reachable_fns", outcome.reachable_fns),
                ("stale_allow", outcome.unused_allow.len()),
            ],
        );
    } else {
        print_findings_human(&findings);
        println!(
            "vod-check analyze: {} findings ({} stale entries in {}); {} files, {} fns ({} reachable from sim roots)",
            findings.len(),
            outcome.unused_allow.len(),
            allow_path.display(),
            outcome.files,
            outcome.fns,
            outcome.reachable_fns
        );
    }
    verdict(findings.len())
}

fn print_findings_human(findings: &[UnifiedFinding]) {
    for f in findings {
        println!("{}:{}: [{}] {}", f.location, f.line, f.rule, f.message);
    }
}

fn run_audit(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut grnet = false;
    let mut series: Option<PathBuf> = None;
    let mut traces: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--grnet" => grnet = true,
            "--series" => match it.next() {
                Some(v) => series = Some(PathBuf::from(v)),
                None => return usage("--series needs a file"),
            },
            other if other.starts_with("--") => {
                return usage(&format!("unknown audit option `{other}`"))
            }
            path => traces.push(PathBuf::from(path)),
        }
    }
    if !grnet && traces.is_empty() {
        return usage("audit needs --grnet or at least one trace file");
    }
    if series.is_some() && (traces.len() > 1 || (grnet && !traces.is_empty())) {
        return usage("--series reconciles against exactly one run (--grnet or one trace)");
    }

    let mut findings: Vec<UnifiedFinding> = Vec::new();
    let mut stats = AuditStats::default();
    let mut series_trace: Option<(String, String)> = None;
    if grnet {
        let text = grnet_case_study_trace();
        collect_audit(
            "grnet-case-study",
            &audit_trace(&text),
            &mut findings,
            &mut stats,
            json,
        );
        series_trace = Some(("grnet-case-study".into(), text));
    }
    for path in traces {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("vod-check: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let label = path.display().to_string();
        collect_audit(&label, &audit_trace(&text), &mut findings, &mut stats, json);
        series_trace = Some((label, text));
    }
    if let Some(series_path) = series {
        let series_text = match std::fs::read_to_string(&series_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("vod-check: cannot read {}: {e}", series_path.display());
                return ExitCode::from(2);
            }
        };
        let (trace_label, trace_text) =
            series_trace.expect("audit requires --grnet or a trace before this point");
        let label = format!("{} vs {trace_label}", series_path.display());
        let summary = audit_series(&series_text, &trace_text);
        stats.windows += summary.windows;
        stats.totals_verified += summary.totals_verified;
        for v in &summary.violations {
            findings.push(UnifiedFinding {
                rule: v.rule.to_string(),
                location: label.clone(),
                line: v.line,
                message: v.message.clone(),
            });
        }
        if !json {
            for v in &summary.violations {
                println!("{label}:window {}: [{}] {}", v.line, v.rule, v.message);
            }
            println!(
                "vod-check audit {label}: {} windows, {} totals verified, {} violations",
                summary.windows,
                summary.totals_verified,
                summary.violations.len()
            );
        }
    }
    if json {
        print_json(
            "audit",
            &findings,
            &[
                ("traces", stats.traces),
                ("events", stats.events),
                ("selections_verified", stats.selections_verified),
                ("admits_verified", stats.admits_verified),
                ("evictions_verified", stats.evictions_verified),
                ("prefix_verified", stats.prefix_verified),
                ("windows", stats.windows),
                ("totals_verified", stats.totals_verified),
            ],
        );
    }
    verdict(findings.len())
}

#[derive(Default)]
struct AuditStats {
    traces: usize,
    events: usize,
    selections_verified: usize,
    admits_verified: usize,
    evictions_verified: usize,
    prefix_verified: usize,
    windows: usize,
    totals_verified: usize,
}

/// Folds one trace's audit into the unified findings and stats; prints
/// the per-trace human summary unless in JSON mode.
fn collect_audit(
    label: &str,
    summary: &AuditSummary,
    findings: &mut Vec<UnifiedFinding>,
    stats: &mut AuditStats,
    json: bool,
) {
    stats.traces += 1;
    stats.events += summary.events;
    stats.selections_verified += summary.selections_verified;
    stats.admits_verified += summary.admits_verified;
    stats.evictions_verified += summary.evictions_verified;
    stats.prefix_verified += summary.prefix_verified;
    for v in &summary.violations {
        findings.push(UnifiedFinding {
            rule: v.rule.to_string(),
            location: label.to_string(),
            line: v.line,
            message: v.message.clone(),
        });
    }
    if !json {
        for v in &summary.violations {
            println!("{label}:{}: [{}] {}", v.line, v.rule, v.message);
        }
        println!(
            "vod-check audit {label}: {} events, {} selections / {} admits / {} evictions / {} prefix decisions verified, {} violations",
            summary.events,
            summary.selections_verified,
            summary.admits_verified,
            summary.evictions_verified,
            summary.prefix_verified,
            summary.violations.len()
        );
    }
}

/// Runs the paper's GRNET case study (seed 42, VRA selector) with a
/// JSONL sink and returns the trace text.
fn grnet_case_study_trace() -> String {
    let scenario = Scenario::grnet_case_study(42);
    let sink = JsonlWriter::new(Vec::new());
    let service = VodService::with_sink(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig::default(),
        sink,
    );
    let (_, _, sink) = service.run_full();
    String::from_utf8(sink.into_inner()).unwrap_or_default()
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("vod-check: {msg} (see `vod-check help`)");
    ExitCode::from(2)
}
