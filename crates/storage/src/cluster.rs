//! The fixed cluster size `c` and the `p = size / c` partitioning.
//!
//! The paper: *"we propose the determination of a, fixed and common for
//! all disks, cluster size of c Mbytes/cluster, in such a way that each
//! video will be divided into p = (Video size in Mbytes)/c parts."*
//!
//! The cluster is also the unit of mid-stream re-routing: the Virtual
//! Routing Algorithm re-evaluates the optimal server before *each cluster*
//! is fetched, so `c` "plays a decisive part in dealing with network
//! congestion".

use serde::{Deserialize, Serialize};

use crate::video::Megabytes;

/// The common cluster size `c`, in megabytes per cluster.
#[derive(Copy, Clone, PartialEq, PartialOrd, Debug, Serialize, Deserialize)]
pub struct ClusterSize(Megabytes);

impl ClusterSize {
    /// Creates a cluster size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: Megabytes) -> Self {
        assert!(!size.is_zero(), "cluster size must be positive");
        ClusterSize(size)
    }

    /// The cluster size in megabytes.
    pub fn megabytes(self) -> Megabytes {
        self.0
    }

    /// Number of parts `p` a video of `video_size` divides into.
    ///
    /// The paper defines `p = size / c`; a trailing partial cluster
    /// still occupies a part, so we round up. Every video has at least
    /// one part.
    pub fn parts(self, video_size: Megabytes) -> usize {
        let p = (video_size.as_f64() / self.0.as_f64()).ceil() as usize;
        p.max(1)
    }

    /// Size of part `index` (0-based) of a video of `video_size`: full
    /// clusters except possibly the last.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.parts(video_size)`.
    pub fn part_size(self, video_size: Megabytes, index: usize) -> Megabytes {
        let p = self.parts(video_size);
        assert!(index < p, "part index {index} out of range (p = {p})");
        if index + 1 < p {
            self.0
        } else {
            let rem = video_size.as_f64() - self.0.as_f64() * (p - 1) as f64;
            if rem <= 0.0 {
                self.0
            } else {
                Megabytes::new(rem)
            }
        }
    }
}

impl Default for ClusterSize {
    /// 100 MB/cluster — roughly one minute of MPEG-2 era video, a
    /// reasonable middle of the re-routing granularity trade-off.
    fn default() -> Self {
        ClusterSize(Megabytes::new(100.0))
    }
}

impl std::fmt::Display for ClusterSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/cluster", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parts_divides_exactly() {
        let c = ClusterSize::new(Megabytes::new(100.0));
        assert_eq!(c.parts(Megabytes::new(700.0)), 7);
        assert_eq!(c.parts(Megabytes::new(100.0)), 1);
    }

    #[test]
    fn parts_rounds_up_partial_cluster() {
        let c = ClusterSize::new(Megabytes::new(100.0));
        assert_eq!(c.parts(Megabytes::new(701.0)), 8);
        assert_eq!(c.parts(Megabytes::new(1.0)), 1);
    }

    #[test]
    fn tiny_video_has_one_part() {
        let c = ClusterSize::new(Megabytes::new(100.0));
        assert_eq!(c.parts(Megabytes::new(0.0)), 1);
    }

    #[test]
    fn part_sizes_sum_to_video_size() {
        let c = ClusterSize::new(Megabytes::new(100.0));
        let size = Megabytes::new(730.0);
        let total: f64 = (0..c.parts(size))
            .map(|i| c.part_size(size, i).as_f64())
            .sum();
        assert!((total - 730.0).abs() < 1e-9);
        assert_eq!(c.part_size(size, 0).as_f64(), 100.0);
        assert_eq!(c.part_size(size, 7).as_f64(), 30.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn part_index_out_of_range_panics() {
        let c = ClusterSize::new(Megabytes::new(100.0));
        let _ = c.part_size(Megabytes::new(100.0), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cluster_rejected() {
        let _ = ClusterSize::new(Megabytes::ZERO);
    }

    #[test]
    fn default_is_100mb() {
        assert_eq!(ClusterSize::default().megabytes().as_f64(), 100.0);
    }

    proptest! {
        #[test]
        fn part_sizes_always_sum_to_video(
            c_mb in 1.0f64..500.0,
            v_mb in 0.5f64..10_000.0,
        ) {
            let c = ClusterSize::new(Megabytes::new(c_mb));
            let size = Megabytes::new(v_mb);
            let p = c.parts(size);
            let total: f64 = (0..p).map(|i| c.part_size(size, i).as_f64()).sum();
            prop_assert!((total - v_mb).abs() < 1e-6);
            // Every full part equals c, the last is in (0, c].
            for i in 0..p {
                let s = c.part_size(size, i).as_f64();
                prop_assert!(s > 0.0 && s <= c_mb + 1e-9);
                if i + 1 < p {
                    prop_assert!((s - c_mb).abs() < 1e-9);
                }
            }
        }
    }
}
