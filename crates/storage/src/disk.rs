//! A single capacity-tracked disk.

use serde::{Deserialize, Serialize};

use crate::error::StorageError;
use crate::video::Megabytes;

/// One disk of a video server's array: fixed capacity, tracked usage.
///
/// The DMA "allocates a predefined disk space for use by the VoD service";
/// `capacity` is that allocation, not necessarily the physical disk size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Disk {
    capacity: Megabytes,
    used: Megabytes,
}

impl Disk {
    /// Creates an empty disk with the given capacity.
    pub fn new(capacity: Megabytes) -> Self {
        Disk {
            capacity,
            used: Megabytes::ZERO,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> Megabytes {
        self.capacity
    }

    /// Space currently in use.
    pub fn used(&self) -> Megabytes {
        self.used
    }

    /// Remaining free space.
    pub fn free(&self) -> Megabytes {
        self.capacity.saturating_sub(self.used)
    }

    /// Returns true if `size` more megabytes would fit.
    pub fn fits(&self, size: Megabytes) -> bool {
        size.as_f64() <= self.free().as_f64() + 1e-9
    }

    /// Allocates `size` megabytes.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::InsufficientCapacity`] when it doesn't fit.
    pub fn allocate(&mut self, size: Megabytes) -> Result<(), StorageError> {
        if !self.fits(size) {
            return Err(StorageError::InsufficientCapacity {
                needed_mb: size.as_f64(),
                available_mb: self.free().as_f64(),
            });
        }
        self.used += size;
        Ok(())
    }

    /// Releases `size` megabytes (clamping at empty).
    pub fn release(&mut self, size: Megabytes) {
        self.used = self.used.saturating_sub(size);
    }

    /// Fraction of capacity in use (0 for a zero-capacity disk).
    pub fn fill_fraction(&self) -> f64 {
        if self.capacity.is_zero() {
            0.0
        } else {
            self.used.as_f64() / self.capacity.as_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release() {
        let mut d = Disk::new(Megabytes::new(100.0));
        assert_eq!(d.free().as_f64(), 100.0);
        d.allocate(Megabytes::new(60.0)).unwrap();
        assert_eq!(d.used().as_f64(), 60.0);
        assert_eq!(d.free().as_f64(), 40.0);
        assert!((d.fill_fraction() - 0.6).abs() < 1e-12);
        d.release(Megabytes::new(10.0));
        assert_eq!(d.used().as_f64(), 50.0);
    }

    #[test]
    fn over_allocation_fails_cleanly() {
        let mut d = Disk::new(Megabytes::new(100.0));
        let err = d.allocate(Megabytes::new(150.0)).unwrap_err();
        assert!(matches!(err, StorageError::InsufficientCapacity { .. }));
        assert_eq!(d.used(), Megabytes::ZERO);
    }

    #[test]
    fn exact_fit_is_allowed() {
        let mut d = Disk::new(Megabytes::new(100.0));
        d.allocate(Megabytes::new(100.0)).unwrap();
        assert_eq!(d.free(), Megabytes::ZERO);
        assert!(!d.fits(Megabytes::new(0.001)));
        assert!(d.fits(Megabytes::ZERO));
    }

    #[test]
    fn release_clamps_at_empty() {
        let mut d = Disk::new(Megabytes::new(100.0));
        d.allocate(Megabytes::new(10.0)).unwrap();
        d.release(Megabytes::new(50.0));
        assert_eq!(d.used(), Megabytes::ZERO);
    }

    #[test]
    fn zero_capacity_disk() {
        let d = Disk::new(Megabytes::ZERO);
        assert_eq!(d.fill_fraction(), 0.0);
        assert!(d.fits(Megabytes::ZERO));
    }
}
