//! Cyclic data striping across disks (the paper's Figure 3).
//!
//! *"These parts will then be distributed for storage with a cyclic manner
//! to the available disks. Thus, assuming a number of n available disks,
//! if n > p then one video part is stored in each one of the first p hard
//! disks. Otherwise, if n < p the first n video parts are stored in the n
//! available disks and the rest p − n parts are distributed to the same
//! disks starting from disk 1 and reusing as many of them as needed."*
//!
//! In other words, part `i` lands on disk `i mod n`.

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSize;
use crate::video::Megabytes;

/// The stripe placement of one video across a disk array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeLayout {
    disk_count: usize,
    part_disks: Vec<usize>,
}

impl StripeLayout {
    /// Computes the cyclic layout of `parts` video parts over `disk_count`
    /// disks: part `i` on disk `i mod n`.
    ///
    /// # Panics
    ///
    /// Panics if `disk_count` or `parts` is zero.
    pub fn cyclic(parts: usize, disk_count: usize) -> Self {
        assert!(disk_count > 0, "striping needs at least one disk");
        assert!(parts > 0, "a video has at least one part");
        StripeLayout {
            disk_count,
            part_disks: (0..parts).map(|i| i % disk_count).collect(),
        }
    }

    /// Computes the layout of a whole video given the common cluster size.
    ///
    /// # Panics
    ///
    /// Panics if `disk_count` is zero.
    pub fn for_video(video_size: Megabytes, cluster: ClusterSize, disk_count: usize) -> Self {
        Self::cyclic(cluster.parts(video_size), disk_count)
    }

    /// Number of parts in the stripe.
    pub fn parts(&self) -> usize {
        self.part_disks.len()
    }

    /// Number of disks in the array the layout was computed for.
    pub fn disk_count(&self) -> usize {
        self.disk_count
    }

    /// The disk holding part `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn disk_of_part(&self, index: usize) -> usize {
        self.part_disks[index]
    }

    /// Iterates over `(part_index, disk_index)` pairs in part order.
    pub fn assignments(&self) -> impl ExactSizeIterator<Item = (usize, usize)> + '_ {
        self.part_disks.iter().copied().enumerate()
    }

    /// The part indices stored on `disk`.
    pub fn parts_on_disk(&self, disk: usize) -> Vec<usize> {
        self.part_disks
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == disk)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of parts stored on `disk`.
    pub fn load_of_disk(&self, disk: usize) -> usize {
        self.part_disks.iter().filter(|&&d| d == disk).count()
    }

    /// Number of distinct disks actually holding parts
    /// (`min(parts, disk_count)` for cyclic striping).
    pub fn disks_used(&self) -> usize {
        self.parts().min(self.disk_count)
    }

    /// The maximum imbalance between any two disks' part counts. Cyclic
    /// striping guarantees this is at most 1.
    pub fn imbalance(&self) -> usize {
        let loads: Vec<usize> = (0..self.disk_count).map(|d| self.load_of_disk(d)).collect();
        let max = loads.iter().copied().max().unwrap_or(0);
        let min = loads.iter().copied().min().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fewer_parts_than_disks_uses_first_p_disks() {
        // n > p: one part per disk on the first p disks.
        let layout = StripeLayout::cyclic(3, 8);
        assert_eq!(layout.parts(), 3);
        assert_eq!(
            layout.assignments().collect::<Vec<_>>(),
            vec![(0, 0), (1, 1), (2, 2)]
        );
        assert_eq!(layout.disks_used(), 3);
        for d in 3..8 {
            assert_eq!(layout.load_of_disk(d), 0);
        }
    }

    #[test]
    fn more_parts_than_disks_wraps_around() {
        // n < p: parts wrap starting again from disk 0 ("disk 1" in the
        // paper's 1-based numbering).
        let layout = StripeLayout::cyclic(7, 3);
        assert_eq!(layout.disk_of_part(0), 0);
        assert_eq!(layout.disk_of_part(2), 2);
        assert_eq!(layout.disk_of_part(3), 0);
        assert_eq!(layout.disk_of_part(6), 0);
        assert_eq!(layout.parts_on_disk(0), vec![0, 3, 6]);
        assert_eq!(layout.parts_on_disk(1), vec![1, 4]);
        assert_eq!(layout.load_of_disk(0), 3);
        assert_eq!(layout.disks_used(), 3);
    }

    #[test]
    fn for_video_combines_cluster_math() {
        let layout = StripeLayout::for_video(
            Megabytes::new(730.0),
            ClusterSize::new(Megabytes::new(100.0)),
            4,
        );
        assert_eq!(layout.parts(), 8);
        assert_eq!(layout.imbalance(), 0); // 8 parts on 4 disks = 2 each
    }

    #[test]
    fn single_disk_takes_everything() {
        let layout = StripeLayout::cyclic(5, 1);
        assert_eq!(layout.load_of_disk(0), 5);
        assert_eq!(layout.disks_used(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_rejected() {
        let _ = StripeLayout::cyclic(5, 0);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_rejected() {
        let _ = StripeLayout::cyclic(0, 5);
    }

    proptest! {
        /// Cyclic striping is capacity-oriented: disk loads never differ
        /// by more than one part, and successive parts land on distinct
        /// disks (when n > 1), which is what lets successive clusters be
        /// read in parallel.
        #[test]
        fn stripe_is_balanced(parts in 1usize..200, disks in 1usize..32) {
            let layout = StripeLayout::cyclic(parts, disks);
            prop_assert!(layout.imbalance() <= 1);
            let total: usize = (0..disks).map(|d| layout.load_of_disk(d)).sum();
            prop_assert_eq!(total, parts);
            if disks > 1 {
                for i in 1..parts {
                    prop_assert_ne!(
                        layout.disk_of_part(i),
                        layout.disk_of_part(i - 1)
                    );
                }
            }
        }
    }
}
