//! Striping across *servers* by popularity — the paper's future work.
//!
//! *"We could have even better results if the various videos were stripped
//! not on the hard disks of one server but of different servers according
//! to the popularity. This means that the most popular technique … will
//! not be imposed on whole videos but on video strips."*
//!
//! [`DistributedLayout`] realizes that idea: video parts are assigned to
//! servers cyclically (like disk striping), and each part is *replicated*
//! on a number of consecutive servers that grows with the title's
//! popularity — popular titles end up on many servers, cold titles on
//! few, at strip granularity rather than whole-video granularity.

use serde::{Deserialize, Serialize};

/// A per-part server assignment for one video.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributedLayout {
    server_count: usize,
    replicas: usize,
    assignments: Vec<Vec<usize>>,
}

impl DistributedLayout {
    /// Computes the layout of `parts` video parts over `server_count`
    /// servers, with the replication factor derived from popularity:
    ///
    /// `replicas = 1 + round(popularity × (max_replicas − 1))`
    ///
    /// where `popularity ∈ [0, 1]` is the title's normalized request share
    /// and `max_replicas` caps fan-out (clamped to `server_count`).
    ///
    /// Part `i`'s primary server is `i mod server_count`; replicas go to
    /// the following servers cyclically.
    ///
    /// # Panics
    ///
    /// Panics if `parts` or `server_count` is zero, `max_replicas` is
    /// zero, or `popularity` is outside `[0, 1]`.
    pub fn by_popularity(
        parts: usize,
        server_count: usize,
        popularity: f64,
        max_replicas: usize,
    ) -> Self {
        assert!(parts > 0, "a video has at least one part");
        assert!(server_count > 0, "need at least one server");
        assert!(max_replicas > 0, "need at least one replica");
        assert!(
            (0.0..=1.0).contains(&popularity),
            "popularity must be in [0, 1]"
        );
        let cap = max_replicas.min(server_count);
        let replicas = 1 + ((popularity * (cap as f64 - 1.0)).round() as usize);
        let assignments = (0..parts)
            .map(|i| {
                (0..replicas)
                    .map(|r| (i + r) % server_count)
                    .collect::<Vec<_>>()
            })
            .collect();
        DistributedLayout {
            server_count,
            replicas,
            assignments,
        }
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.assignments.len()
    }

    /// Number of servers in the pool.
    pub fn server_count(&self) -> usize {
        self.server_count
    }

    /// Replication factor applied to every part.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The servers holding part `index` (primary first).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn servers_of_part(&self, index: usize) -> &[usize] {
        &self.assignments[index]
    }

    /// Number of parts (counting replicas) stored on `server`.
    pub fn load_of_server(&self, server: usize) -> usize {
        self.assignments
            .iter()
            .flat_map(|a| a.iter())
            .filter(|&&s| s == server)
            .count()
    }

    /// True if every part is available on at least one of `alive`
    /// servers — the availability benefit of strip replication.
    pub fn available_with(&self, alive: &[usize]) -> bool {
        self.assignments
            .iter()
            .all(|servers| servers.iter().any(|s| alive.contains(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cold_title_gets_single_replica() {
        let l = DistributedLayout::by_popularity(6, 4, 0.0, 4);
        assert_eq!(l.replicas(), 1);
        assert_eq!(l.servers_of_part(0), &[0]);
        assert_eq!(l.servers_of_part(5), &[1]); // 5 mod 4
    }

    #[test]
    fn hot_title_replicates_widely() {
        let l = DistributedLayout::by_popularity(4, 4, 1.0, 4);
        assert_eq!(l.replicas(), 4);
        for p in 0..4 {
            assert_eq!(l.servers_of_part(p).len(), 4);
        }
    }

    #[test]
    fn mid_popularity_interpolates() {
        let l = DistributedLayout::by_popularity(4, 5, 0.5, 5);
        assert_eq!(l.replicas(), 3); // 1 + round(0.5 * 4)
        assert_eq!(l.servers_of_part(0), &[0, 1, 2]);
        assert_eq!(l.servers_of_part(4 - 1), &[3, 4, 0]);
    }

    #[test]
    fn max_replicas_clamped_to_server_count() {
        let l = DistributedLayout::by_popularity(2, 3, 1.0, 10);
        assert_eq!(l.replicas(), 3);
    }

    #[test]
    fn availability_follows_replication() {
        let cold = DistributedLayout::by_popularity(6, 3, 0.0, 3);
        // Parts land on servers 0,1,2 cyclically; losing server 1 loses parts.
        assert!(!cold.available_with(&[0, 2]));
        let hot = DistributedLayout::by_popularity(6, 3, 1.0, 3);
        assert!(hot.available_with(&[2]));
        assert!(hot.available_with(&[0, 2]));
    }

    #[test]
    #[should_panic(expected = "popularity")]
    fn out_of_range_popularity_rejected() {
        let _ = DistributedLayout::by_popularity(1, 1, 1.5, 1);
    }

    proptest! {
        #[test]
        fn loads_are_balanced_within_replica_factor(
            parts in 1usize..64,
            servers in 1usize..16,
            pop in 0.0f64..1.0,
        ) {
            let l = DistributedLayout::by_popularity(parts, servers, pop, servers);
            let total: usize = (0..servers).map(|s| l.load_of_server(s)).sum();
            prop_assert_eq!(total, parts * l.replicas());
            // Cyclic placement keeps per-server load within replicas of even.
            let loads: Vec<usize> = (0..servers).map(|s| l.load_of_server(s)).collect();
            let max = *loads.iter().max().unwrap();
            let min = *loads.iter().min().unwrap();
            prop_assert!(max - min <= l.replicas());
            // All servers alive → always available.
            let alive: Vec<usize> = (0..servers).collect();
            prop_assert!(l.available_with(&alive));
        }
    }
}
