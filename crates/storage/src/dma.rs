//! The Disk (storage and) Manipulation Algorithm — the paper's Figure 2.
//!
//! Every video server runs a DMA instance over its disk array. Each
//! request for a title grants it a popularity point; resident titles are
//! served from cache, absent titles are written to the striped disks while
//! space lasts, and once the cache is full a new title replaces the least
//! popular resident one — but only when the newcomer has accumulated more
//! points than the victim.
//!
//! ```text
//! DO WHILE Video Service is Online
//!   IF (Server has begun downloading a video) THEN
//!     IF (Video is already on disk)       → give a point
//!     ELSE IF (Disks can tolerate it)     → write to disks
//!     ELSE give a point;
//!          IF (points > least popular resident's points)
//!             delete least popular;
//!             IF (Disks can tolerate it)  → write to disks
//! ```
//!
//! Two documented design knobs generalize the pseudocode for ablation
//! (DESIGN.md §6): an *admission threshold* (the prose's "requested for
//! over a certain number of times") and the eviction mode (the
//! pseudocode's single eviction attempt vs. evicting until the newcomer
//! fits).

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSize;
use crate::disk_array::DiskArray;
use crate::error::StorageError;
use crate::popularity::PopularityTracker;
use crate::striping::StripeLayout;
use crate::video::{Megabytes, VideoId, VideoMeta};

/// How the DMA evicts when the cache is full.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum EvictionMode {
    /// Exactly one eviction attempt per request, as in Figure 2. If the
    /// newcomer still does not fit after deleting the least popular
    /// resident, it is not stored (and the victim stays deleted).
    #[default]
    SingleAttempt,
    /// Evict less-popular residents (ascending popularity) until the
    /// newcomer fits; if even evicting every less-popular resident would
    /// not free enough space, evict nothing.
    UntilFit,
}

/// Configuration of a DMA cache.
#[derive(Debug, Copy, Clone, PartialEq, Serialize, Deserialize)]
pub struct DmaConfig {
    /// Number of disks in the server's array ("we propose the use of as
    /// many disks as possible").
    pub disk_count: usize,
    /// Capacity allocated to the VoD service on each disk.
    pub disk_capacity: Megabytes,
    /// The common cluster size `c`.
    pub cluster_size: ClusterSize,
    /// Points a non-resident title must exceed before it may be admitted
    /// (0 = admit whenever space allows, exactly as in Figure 2).
    pub admit_threshold: u64,
    /// Eviction behaviour when the cache is full.
    pub eviction: EvictionMode,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            disk_count: 4,
            disk_capacity: Megabytes::new(10_000.0),
            cluster_size: ClusterSize::default(),
            admit_threshold: 0,
            eviction: EvictionMode::SingleAttempt,
        }
    }
}

/// Why a request did not result in the title being cached.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RejectReason {
    /// The title has not yet exceeded the admission threshold.
    BelowThreshold,
    /// The cache is full and the title is not more popular than the least
    /// popular resident.
    NotPopularEnough,
    /// Space was freed (or none could be) but the title still does not
    /// fit. `evicted` lists any victims deleted in the attempt.
    DoesNotFit {
        /// Victims removed during the failed attempt (empty for
        /// [`EvictionMode::UntilFit`], which never evicts in vain).
        evicted: Vec<VideoId>,
    },
}

/// Outcome of one [`DmaCache::on_request`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DmaDecision {
    /// The title was already resident; it got a point and is served
    /// locally.
    Hit,
    /// The title was written to the disks (free space, no eviction).
    Admitted {
        /// The stripe placement chosen for the title.
        layout: StripeLayout,
    },
    /// The title was written after evicting less popular residents.
    AdmittedAfterEviction {
        /// The evicted victims, in eviction order.
        evicted: Vec<VideoId>,
        /// The stripe placement chosen for the title.
        layout: StripeLayout,
    },
    /// The title was not cached this time.
    NotAdmitted {
        /// Why the title was not cached.
        reason: RejectReason,
    },
}

impl DmaDecision {
    /// Returns true for [`DmaDecision::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, DmaDecision::Hit)
    }

    /// Returns true if the title is resident after this decision.
    pub fn is_resident_after(&self) -> bool {
        matches!(
            self,
            DmaDecision::Hit
                | DmaDecision::Admitted { .. }
                | DmaDecision::AdmittedAfterEviction { .. }
        )
    }
}

/// Cumulative statistics of a DMA cache.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DmaStats {
    /// Total requests observed.
    pub requests: u64,
    /// Requests served from cache.
    pub hits: u64,
    /// Titles written to disk (with or without eviction).
    pub admissions: u64,
    /// Titles deleted to make room.
    pub evictions: u64,
    /// Requests that left the title uncached.
    pub rejections: u64,
}

impl DmaStats {
    /// Hit ratio over all requests (0 when no requests yet).
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// A per-server popularity cache running the Disk Manipulation Algorithm.
///
/// See the [crate-level example](crate) for basic usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DmaCache {
    config: DmaConfig,
    array: DiskArray,
    tracker: PopularityTracker,
    stats: DmaStats,
}

impl DmaCache {
    /// Creates an empty cache.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NoDisks`] when `config.disk_count` is zero.
    pub fn new(config: DmaConfig) -> Result<Self, StorageError> {
        let array =
            DiskArray::uniform(config.disk_count, config.disk_capacity, config.cluster_size)?;
        Ok(DmaCache {
            config,
            array,
            tracker: PopularityTracker::new(),
            stats: DmaStats::default(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &DmaConfig {
        &self.config
    }

    /// The underlying disk array (read access).
    pub fn array(&self) -> &DiskArray {
        &self.array
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DmaStats {
        self.stats
    }

    /// Returns true if `video` is currently resident.
    pub fn contains(&self, video: VideoId) -> bool {
        self.array.contains(video)
    }

    /// Ids of resident titles, in id order.
    pub fn resident_ids(&self) -> Vec<VideoId> {
        self.array.stored_ids().collect()
    }

    /// Current popularity points of `video`.
    pub fn points(&self, video: VideoId) -> u64 {
        self.tracker.points(video)
    }

    /// Pre-loads a title into the cache outside the request path (service
    /// initialization: "The video titles available on each VoD server").
    ///
    /// # Errors
    ///
    /// Propagates [`StorageError`] if the title is already present or does
    /// not fit.
    pub fn preload(&mut self, video: &VideoMeta) -> Result<StripeLayout, StorageError> {
        self.array.store(video)
    }

    /// Processes one request for `video` — the body of Figure 2's loop.
    pub fn on_request(&mut self, video: &VideoMeta) -> DmaDecision {
        self.stats.requests += 1;
        // "It counts the requests that are made for every video title."
        let points = self.tracker.award(video.id());

        if self.array.contains(video.id()) {
            self.stats.hits += 1;
            return DmaDecision::Hit;
        }

        if points <= self.config.admit_threshold {
            self.stats.rejections += 1;
            return DmaDecision::NotAdmitted {
                reason: RejectReason::BelowThreshold,
            };
        }

        if self.array.can_tolerate(video) {
            let layout = self
                .array
                .store(video)
                .expect("can_tolerate checked the fit");
            self.stats.admissions += 1;
            self.debug_check_occupancy();
            return DmaDecision::Admitted { layout };
        }

        let decision = match self.config.eviction {
            EvictionMode::SingleAttempt => self.evict_single_attempt(video, points),
            EvictionMode::UntilFit => self.evict_until_fit(video, points),
        };
        self.debug_check_occupancy();
        decision
    }

    /// Dev-run mirror of the auditor's capacity rule (`vod-check audit`
    /// A001): resident bytes never exceed the array's allocation.
    #[inline]
    fn debug_check_occupancy(&self) {
        debug_assert!(
            self.array.total_free().as_f64() >= -1e-9,
            "DMA occupancy exceeds capacity: free = {} MB",
            self.array.total_free().as_f64()
        );
    }

    /// Figure 2 verbatim: one comparison against the least popular
    /// resident, one deletion, one re-check.
    fn evict_single_attempt(&mut self, video: &VideoMeta, points: u64) -> DmaDecision {
        let victim = match self.tracker.least_popular(self.array.stored_ids()) {
            Some(v) => v,
            None => {
                // Empty cache but the video still doesn't fit: it is
                // simply larger than the allocated space.
                self.stats.rejections += 1;
                return DmaDecision::NotAdmitted {
                    reason: RejectReason::DoesNotFit { evicted: vec![] },
                };
            }
        };
        if points <= self.tracker.points(victim) {
            self.stats.rejections += 1;
            return DmaDecision::NotAdmitted {
                reason: RejectReason::NotPopularEnough,
            };
        }
        // Dev-run mirror of the auditor's eviction rule (A003): the
        // victim is a least-popular resident, strictly colder than the
        // newcomer.
        debug_assert!(
            self.array
                .stored_ids()
                .all(|v| self.tracker.points(victim) <= self.tracker.points(v)),
            "eviction victim {victim} is not least popular"
        );
        debug_assert!(
            self.tracker.points(victim) < points,
            "eviction victim {victim} is not colder than the newcomer"
        );
        self.array
            .remove(victim)
            .expect("victim came from stored_ids");
        self.stats.evictions += 1;
        if self.array.can_tolerate(video) {
            let layout = self
                .array
                .store(video)
                .expect("can_tolerate checked the fit");
            self.stats.admissions += 1;
            DmaDecision::AdmittedAfterEviction {
                evicted: vec![victim],
                layout,
            }
        } else {
            self.stats.rejections += 1;
            DmaDecision::NotAdmitted {
                reason: RejectReason::DoesNotFit {
                    evicted: vec![victim],
                },
            }
        }
    }

    /// Ablation variant: evict less-popular residents (ascending
    /// popularity) until the newcomer fits; evict nothing if it can never
    /// fit.
    fn evict_until_fit(&mut self, video: &VideoMeta, points: u64) -> DmaDecision {
        // Candidates strictly less popular than the newcomer, worst first.
        let mut candidates: Vec<VideoId> = self
            .array
            .stored_ids()
            .filter(|&v| self.tracker.points(v) < points)
            .collect();
        candidates.sort_by_key(|&v| (self.tracker.points(v), v));

        // Feasibility check on a scratch copy: would evicting all of them
        // make room?
        let mut scratch = self.array.clone();
        let mut planned = Vec::new();
        let mut fits = scratch.can_tolerate(video);
        for &v in &candidates {
            if fits {
                break;
            }
            scratch.remove(v).expect("candidate is stored");
            planned.push(v);
            fits = scratch.can_tolerate(video);
        }
        if !fits {
            self.stats.rejections += 1;
            let reason = if candidates.is_empty() {
                RejectReason::NotPopularEnough
            } else {
                RejectReason::DoesNotFit { evicted: vec![] }
            };
            return DmaDecision::NotAdmitted { reason };
        }
        for &v in &planned {
            self.array.remove(v).expect("planned victim is stored");
            self.stats.evictions += 1;
        }
        let layout = self
            .array
            .store(video)
            .expect("feasibility was simulated on a copy");
        self.stats.admissions += 1;
        if planned.is_empty() {
            DmaDecision::Admitted { layout }
        } else {
            DmaDecision::AdmittedAfterEviction {
                evicted: planned,
                layout,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video(id: u32, mb: f64) -> VideoMeta {
        VideoMeta::new(VideoId::new(id), format!("t{id}"), Megabytes::new(mb), 1.5)
    }

    /// 2 disks × 200 MB, 100 MB clusters → fits two 200 MB videos.
    fn small_cache(eviction: EvictionMode) -> DmaCache {
        DmaCache::new(DmaConfig {
            disk_count: 2,
            disk_capacity: Megabytes::new(200.0),
            cluster_size: ClusterSize::new(Megabytes::new(100.0)),
            admit_threshold: 0,
            eviction,
        })
        .unwrap()
    }

    #[test]
    fn admits_while_space_lasts_then_hits() {
        let mut c = small_cache(EvictionMode::SingleAttempt);
        let v = video(1, 200.0);
        assert!(matches!(c.on_request(&v), DmaDecision::Admitted { .. }));
        assert!(matches!(c.on_request(&v), DmaDecision::Hit));
        assert_eq!(c.points(v.id()), 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().admissions, 1);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_cache_rejects_equal_popularity() {
        let mut c = small_cache(EvictionMode::SingleAttempt);
        c.on_request(&video(1, 200.0));
        c.on_request(&video(2, 200.0));
        // Newcomer with 1 point vs residents with 1 point: not MORE popular.
        let d = c.on_request(&video(3, 200.0));
        assert_eq!(
            d,
            DmaDecision::NotAdmitted {
                reason: RejectReason::NotPopularEnough
            }
        );
        assert!(c.contains(VideoId::new(1)));
        assert!(c.contains(VideoId::new(2)));
    }

    #[test]
    fn popular_newcomer_replaces_least_popular() {
        let mut c = small_cache(EvictionMode::SingleAttempt);
        c.on_request(&video(1, 200.0)); // 1 point
        c.on_request(&video(2, 200.0)); // 1 point
        c.on_request(&video(2, 200.0)); // hit → 2 points
                                        // Two requests for v3: first rejected (1 pt vs 1 pt), second evicts v1.
        let v3 = video(3, 200.0);
        assert!(matches!(c.on_request(&v3), DmaDecision::NotAdmitted { .. }));
        let d = c.on_request(&v3);
        assert_eq!(
            d,
            DmaDecision::AdmittedAfterEviction {
                evicted: vec![VideoId::new(1)],
                layout: StripeLayout::cyclic(2, 2),
            }
        );
        assert!(!c.contains(VideoId::new(1)));
        assert!(c.contains(VideoId::new(2)));
        assert!(c.contains(VideoId::new(3)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn single_attempt_may_evict_in_vain() {
        // Cache holds two 200 MB titles; newcomer is 400 MB: deleting one
        // victim is not enough — Figure 2 still deletes it.
        let mut c = small_cache(EvictionMode::SingleAttempt);
        c.on_request(&video(1, 200.0));
        c.on_request(&video(2, 200.0));
        let big = video(3, 400.0);
        c.on_request(&big); // point 1: rejected, no eviction (1 ≤ 1)
        let d = c.on_request(&big); // point 2 > 1 → evict v1, still no fit
        assert_eq!(
            d,
            DmaDecision::NotAdmitted {
                reason: RejectReason::DoesNotFit {
                    evicted: vec![VideoId::new(1)]
                }
            }
        );
        assert!(!c.contains(VideoId::new(1)));
        assert!(!c.contains(VideoId::new(3)));
    }

    #[test]
    fn until_fit_evicts_enough_or_nothing() {
        let mut c = small_cache(EvictionMode::UntilFit);
        c.on_request(&video(1, 200.0));
        c.on_request(&video(2, 200.0));
        let big = video(3, 400.0);
        c.on_request(&big); // 1 pt: no strictly-less-popular candidates with fewer points
        let d = c.on_request(&big); // 2 pts > both residents' 1 pt → evict both
        match d {
            DmaDecision::AdmittedAfterEviction { ref evicted, .. } => {
                assert_eq!(evicted.len(), 2);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(VideoId::new(3)));
    }

    #[test]
    fn until_fit_never_evicts_in_vain() {
        let mut c = small_cache(EvictionMode::UntilFit);
        c.on_request(&video(1, 200.0));
        c.on_request(&video(2, 200.0));
        // 800 MB can never fit in 400 MB total; residents must survive.
        let huge = video(3, 800.0);
        c.on_request(&huge);
        let d = c.on_request(&huge);
        assert!(matches!(d, DmaDecision::NotAdmitted { .. }));
        assert!(c.contains(VideoId::new(1)));
        assert!(c.contains(VideoId::new(2)));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn admission_threshold_delays_caching() {
        let mut c = DmaCache::new(DmaConfig {
            admit_threshold: 2,
            disk_count: 2,
            disk_capacity: Megabytes::new(200.0),
            cluster_size: ClusterSize::new(Megabytes::new(100.0)),
            eviction: EvictionMode::SingleAttempt,
        })
        .unwrap();
        let v = video(1, 200.0);
        assert_eq!(
            c.on_request(&v),
            DmaDecision::NotAdmitted {
                reason: RejectReason::BelowThreshold
            }
        );
        assert!(matches!(c.on_request(&v), DmaDecision::NotAdmitted { .. }));
        // Third request: points (3) > threshold (2).
        assert!(matches!(c.on_request(&v), DmaDecision::Admitted { .. }));
    }

    #[test]
    fn oversized_video_on_empty_cache_is_rejected() {
        let mut c = small_cache(EvictionMode::SingleAttempt);
        let d = c.on_request(&video(1, 4_000.0));
        assert_eq!(
            d,
            DmaDecision::NotAdmitted {
                reason: RejectReason::DoesNotFit { evicted: vec![] }
            }
        );
    }

    #[test]
    fn preload_bypasses_popularity() {
        let mut c = small_cache(EvictionMode::SingleAttempt);
        let v = video(9, 200.0);
        c.preload(&v).unwrap();
        assert!(c.contains(v.id()));
        assert_eq!(c.points(v.id()), 0);
        assert!(c.on_request(&v).is_hit());
    }

    #[test]
    fn decision_helpers() {
        assert!(DmaDecision::Hit.is_hit());
        assert!(DmaDecision::Hit.is_resident_after());
        let rejected = DmaDecision::NotAdmitted {
            reason: RejectReason::BelowThreshold,
        };
        assert!(!rejected.is_hit());
        assert!(!rejected.is_resident_after());
    }

    #[test]
    fn stats_track_all_outcomes() {
        let mut c = small_cache(EvictionMode::SingleAttempt);
        c.on_request(&video(1, 200.0)); // admit
        c.on_request(&video(1, 200.0)); // hit
        c.on_request(&video(2, 200.0)); // admit
        c.on_request(&video(3, 200.0)); // reject
        let s = c.stats();
        assert_eq!(s.requests, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.admissions, 2);
        assert_eq!(s.rejections, 1);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn zero_disk_config_rejected() {
        let err = DmaCache::new(DmaConfig {
            disk_count: 0,
            ..DmaConfig::default()
        })
        .unwrap_err();
        assert_eq!(err, StorageError::NoDisks);
    }
}
