//! Popularity-sized title *prefixes* for regional proxy servers.
//!
//! The DMA ([`crate::dma`]) keeps whole movies at the origin servers. A
//! regional proxy is cheaper: it holds only the **first clusters** of the
//! hottest titles, enough to cover session startup from local storage
//! while the Virtual Routing Algorithm fetches the remainder from the
//! origin ("An Optimal Prefix Replication Strategy for VoD Services").
//!
//! [`PrefixStore`] mirrors the DMA's decision-stream discipline so the
//! trace auditor can replay it independently (`vod-check audit`, rules
//! A014–A016):
//!
//! * every request awards the title one popularity point;
//! * the *target* prefix length grows with popularity — `base_clusters`
//!   plus one cluster per `growth_points` further requests, capped at
//!   `max_clusters` and at the title's own length;
//! * a non-resident title is admitted once its points exceed
//!   `admit_threshold` and the store can free enough space by evicting
//!   strictly-less-popular prefixes (never in vain, like the DMA's
//!   `UntilFit` mode);
//! * a resident title whose target has outgrown its stored prefix is
//!   extended in place when free space allows — extension never evicts.
//!
//! Every [`PrefixStore::on_request`] call returns exactly one
//! [`PrefixDecision`]; serving always uses the *pre-extension* length
//! (`Hit`/`HitExtended::from_clusters`), because an extension's tail is
//! only mirrored into the store as the triggering session streams
//! through the proxy.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSize;
use crate::error::StorageError;
use crate::popularity::PopularityTracker;
use crate::video::{Megabytes, VideoId, VideoMeta};

/// Configuration of a per-proxy prefix store.
#[derive(Debug, Copy, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixConfig {
    /// Total space the proxy dedicates to prefixes.
    pub capacity: Megabytes,
    /// The common cluster size `c` (shared with the origin DMA so a
    /// prefix is always a whole number of fetchable clusters).
    pub cluster_size: ClusterSize,
    /// Points a non-resident title must exceed before its prefix may be
    /// admitted (0 = admit on first request).
    pub admit_threshold: u64,
    /// Prefix length granted at admission, in clusters.
    pub base_clusters: u32,
    /// Popularity-driven ceiling on any prefix length, in clusters.
    pub max_clusters: u32,
    /// Further requests per additional cluster of prefix (0 disables
    /// popularity growth: every prefix stays at `base_clusters`).
    pub growth_points: u64,
}

impl Default for PrefixConfig {
    fn default() -> Self {
        PrefixConfig {
            capacity: Megabytes::new(2_000.0),
            cluster_size: ClusterSize::default(),
            admit_threshold: 1,
            base_clusters: 1,
            max_clusters: 4,
            growth_points: 8,
        }
    }
}

/// Why a request did not result in the prefix being stored.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PrefixRejectReason {
    /// The title has not yet exceeded the admission threshold.
    BelowThreshold,
    /// No strictly-less-popular resident prefixes could be evicted.
    NotPopularEnough,
    /// Even evicting every colder resident would not free enough space.
    DoesNotFit,
}

/// Outcome of one [`PrefixStore::on_request`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PrefixDecision {
    /// The prefix is resident; serve `clusters` of startup locally.
    Hit {
        /// Resident prefix length, in clusters.
        clusters: u32,
    },
    /// Resident, and popularity growth extended the stored prefix. The
    /// current session is still served the *old* length — the extension
    /// tail is mirrored as this session streams through the proxy.
    HitExtended {
        /// Prefix length before the extension (the served length).
        from_clusters: u32,
        /// Prefix length after the extension.
        to_clusters: u32,
    },
    /// The prefix was stored without evicting anyone.
    Admitted {
        /// Stored prefix length, in clusters.
        clusters: u32,
    },
    /// The prefix was stored after evicting colder prefixes.
    AdmittedAfterEviction {
        /// The evicted victims, in eviction order.
        evicted: Vec<VideoId>,
        /// Stored prefix length, in clusters.
        clusters: u32,
    },
    /// Nothing was stored this time.
    NotAdmitted {
        /// Why the prefix was not stored.
        reason: PrefixRejectReason,
    },
}

impl PrefixDecision {
    /// Clusters the proxy can serve locally for *this* request (0 when
    /// the title's prefix is not resident).
    pub fn serve_clusters(&self) -> u32 {
        match self {
            PrefixDecision::Hit { clusters } => *clusters,
            PrefixDecision::HitExtended { from_clusters, .. } => *from_clusters,
            _ => 0,
        }
    }

    /// Returns true when the request was served from the store
    /// ([`PrefixDecision::Hit`] or [`PrefixDecision::HitExtended`]).
    pub fn is_hit(&self) -> bool {
        self.serve_clusters() > 0
    }
}

/// Cumulative statistics of a prefix store.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrefixStats {
    /// Total requests observed.
    pub requests: u64,
    /// Requests whose prefix was resident (includes extensions).
    pub hits: u64,
    /// Prefixes written to the store.
    pub admissions: u64,
    /// Prefixes deleted to make room.
    pub evictions: u64,
    /// Requests that left the title's prefix unstored.
    pub rejections: u64,
    /// In-place prefix extensions driven by popularity growth.
    pub extensions: u64,
}

impl PrefixStats {
    /// Hit ratio over all requests (0 when no requests yet).
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// A regional proxy's prefix store.
///
/// # Examples
///
/// ```
/// use vod_storage::prefix::{PrefixConfig, PrefixDecision, PrefixStore};
/// use vod_storage::video::{Megabytes, VideoId, VideoMeta};
///
/// # fn main() -> Result<(), vod_storage::StorageError> {
/// let mut store = PrefixStore::new(PrefixConfig {
///     admit_threshold: 0,
///     ..PrefixConfig::default()
/// })?;
/// let movie = VideoMeta::new(VideoId::new(1), "Zorba", Megabytes::new(700.0), 1.5);
/// // First request admits the base prefix; the second serves from it.
/// assert!(matches!(store.on_request(&movie), PrefixDecision::Admitted { clusters: 1 }));
/// assert_eq!(store.on_request(&movie).serve_clusters(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixStore {
    config: PrefixConfig,
    tracker: PopularityTracker,
    /// Resident prefix per title: length in clusters plus the exact
    /// megabytes it occupies (a whole-title prefix ends on the title's
    /// partial trailing cluster, so `clusters × c` would overcount).
    residents: BTreeMap<VideoId, ResidentPrefix>,
    /// Megabytes currently occupied by resident prefixes.
    occupied_mb: f64,
    stats: PrefixStats,
}

/// A resident prefix: its length and the exact space it occupies.
#[derive(Debug, Copy, Clone, PartialEq, Serialize, Deserialize)]
struct ResidentPrefix {
    clusters: u32,
    mb: f64,
}

impl PrefixStore {
    /// Creates an empty store.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::InvalidPrefixConfig`] when the capacity is
    /// zero, `base_clusters` is zero, or `max_clusters < base_clusters`.
    pub fn new(config: PrefixConfig) -> Result<Self, StorageError> {
        if config.capacity.is_zero() {
            return Err(StorageError::InvalidPrefixConfig(
                "prefix capacity must be positive",
            ));
        }
        if config.base_clusters == 0 {
            return Err(StorageError::InvalidPrefixConfig(
                "base prefix length must be at least one cluster",
            ));
        }
        if config.max_clusters < config.base_clusters {
            return Err(StorageError::InvalidPrefixConfig(
                "max prefix length must be at least the base length",
            ));
        }
        Ok(PrefixStore {
            config,
            tracker: PopularityTracker::new(),
            residents: BTreeMap::new(),
            occupied_mb: 0.0,
            stats: PrefixStats::default(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &PrefixConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> PrefixStats {
        self.stats
    }

    /// Megabytes currently occupied by resident prefixes.
    pub fn occupied_mb(&self) -> f64 {
        self.occupied_mb
    }

    /// Resident prefix length of `video`, in clusters.
    pub fn resident_clusters(&self, video: VideoId) -> Option<u32> {
        self.residents.get(&video).map(|r| r.clusters)
    }

    /// Ids of titles with a resident prefix, in id order.
    pub fn resident_ids(&self) -> impl Iterator<Item = VideoId> + '_ {
        self.residents.keys().copied()
    }

    /// Current popularity points of `video`.
    pub fn points(&self, video: VideoId) -> u64 {
        self.tracker.points(video)
    }

    /// The popularity-driven target prefix length for a title with
    /// `points` requests, before capping at the title's own length.
    pub fn target_clusters(&self, points: u64) -> u32 {
        let grown = points
            .saturating_sub(1)
            .checked_div(self.config.growth_points)
            .map_or(0, |g| g.min(u32::MAX as u64) as u32);
        self.config
            .base_clusters
            .saturating_add(grown)
            .min(self.config.max_clusters)
    }

    /// Megabytes a `clusters`-long prefix of `video` occupies: full
    /// clusters except possibly the title's own trailing partial one.
    pub fn prefix_mb(&self, video: &VideoMeta, clusters: u32) -> f64 {
        let parts = self.title_clusters(video);
        let c = self.config.cluster_size.megabytes().as_f64();
        if clusters >= parts {
            video.size().as_f64()
        } else {
            c * clusters as f64
        }
    }

    /// The title's own length in clusters.
    pub fn title_clusters(&self, video: &VideoMeta) -> u32 {
        self.config
            .cluster_size
            .parts(video.size())
            .min(u32::MAX as usize) as u32
    }

    /// Processes one request for `video`, returning the store's decision.
    pub fn on_request(&mut self, video: &VideoMeta) -> PrefixDecision {
        self.stats.requests += 1;
        let points = self.tracker.award(video.id());
        let target = self.target_clusters(points).min(self.title_clusters(video));

        if let Some(current) = self.residents.get(&video.id()).copied() {
            self.stats.hits += 1;
            if target > current.clusters {
                let new_mb = self.prefix_mb(video, target);
                let delta = new_mb - current.mb;
                if self.free_mb() >= delta - f64::EPSILON {
                    self.occupied_mb += delta;
                    self.residents.insert(
                        video.id(),
                        ResidentPrefix {
                            clusters: target,
                            mb: new_mb,
                        },
                    );
                    self.stats.extensions += 1;
                    self.debug_check_occupancy();
                    return PrefixDecision::HitExtended {
                        from_clusters: current.clusters,
                        to_clusters: target,
                    };
                }
            }
            return PrefixDecision::Hit {
                clusters: current.clusters,
            };
        }

        if points <= self.config.admit_threshold {
            self.stats.rejections += 1;
            return PrefixDecision::NotAdmitted {
                reason: PrefixRejectReason::BelowThreshold,
            };
        }

        let need = self.prefix_mb(video, target);
        let stored = ResidentPrefix {
            clusters: target,
            mb: need,
        };
        if self.free_mb() >= need {
            self.residents.insert(video.id(), stored);
            self.occupied_mb += need;
            self.stats.admissions += 1;
            self.debug_check_occupancy();
            return PrefixDecision::Admitted { clusters: target };
        }

        // Evict strictly-colder prefixes (ascending popularity, ties by
        // id) until the newcomer fits — or nothing, if it never would.
        let mut candidates: Vec<VideoId> = self
            .residents
            .keys()
            .copied()
            .filter(|&v| self.tracker.points(v) < points)
            .collect();
        candidates.sort_by_key(|&v| (self.tracker.points(v), v));

        let mut freed = 0.0;
        let mut planned = Vec::new();
        for &v in &candidates {
            if self.free_mb() + freed >= need {
                break;
            }
            freed += self.resident_mb(v);
            planned.push(v);
        }
        if self.free_mb() + freed < need {
            self.stats.rejections += 1;
            let reason = if candidates.is_empty() {
                PrefixRejectReason::NotPopularEnough
            } else {
                PrefixRejectReason::DoesNotFit
            };
            return PrefixDecision::NotAdmitted { reason };
        }
        for &v in &planned {
            self.occupied_mb = (self.occupied_mb - self.resident_mb(v)).max(0.0);
            self.residents.remove(&v);
            self.stats.evictions += 1;
        }
        self.residents.insert(video.id(), stored);
        self.occupied_mb += need;
        self.stats.admissions += 1;
        self.debug_check_occupancy();
        PrefixDecision::AdmittedAfterEviction {
            evicted: planned,
            clusters: target,
        }
    }

    /// Free space in megabytes.
    fn free_mb(&self) -> f64 {
        self.config.capacity.as_f64() - self.occupied_mb
    }

    /// Exact megabytes occupied by the resident prefix of `video` (0
    /// when not resident).
    pub fn resident_mb(&self, video: VideoId) -> f64 {
        self.residents.get(&video).map(|r| r.mb).unwrap_or(0.0)
    }

    /// Dev-run mirror of the auditor's capacity rule (A014): resident
    /// prefix bytes never exceed the store's allocation.
    #[inline]
    fn debug_check_occupancy(&self) {
        debug_assert!(
            self.occupied_mb <= self.config.capacity.as_f64() + 1e-9,
            "prefix occupancy {} MB exceeds capacity {} MB",
            self.occupied_mb,
            self.config.capacity.as_f64()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video(id: u32, mb: f64) -> VideoMeta {
        VideoMeta::new(VideoId::new(id), format!("t{id}"), Megabytes::new(mb), 1.5)
    }

    /// 300 MB store, 100 MB clusters, admit on first request, prefixes
    /// grow from 1 cluster by one per 2 further requests, capped at 3.
    fn small_store() -> PrefixStore {
        PrefixStore::new(PrefixConfig {
            capacity: Megabytes::new(300.0),
            cluster_size: ClusterSize::new(Megabytes::new(100.0)),
            admit_threshold: 0,
            base_clusters: 1,
            max_clusters: 3,
            growth_points: 2,
        })
        .unwrap()
    }

    #[test]
    fn admits_base_prefix_then_hits() {
        let mut s = small_store();
        let v = video(1, 700.0);
        assert_eq!(s.on_request(&v), PrefixDecision::Admitted { clusters: 1 });
        assert!((s.occupied_mb() - 100.0).abs() < 1e-9);
        let d = s.on_request(&v);
        assert_eq!(d, PrefixDecision::Hit { clusters: 1 });
        assert_eq!(d.serve_clusters(), 1);
        assert!(d.is_hit());
        assert_eq!(s.stats().hits, 1);
        assert_eq!(s.stats().admissions, 1);
    }

    #[test]
    fn popularity_extends_prefix_in_place() {
        let mut s = small_store();
        let v = video(1, 700.0);
        s.on_request(&v); // point 1: admit 1 cluster
        s.on_request(&v); // point 2: hit, target still 1
                          // Point 3: target = 1 + (3-1)/2 = 2 clusters → extension.
        let d = s.on_request(&v);
        assert_eq!(
            d,
            PrefixDecision::HitExtended {
                from_clusters: 1,
                to_clusters: 2,
            }
        );
        // The current session is served the pre-extension length.
        assert_eq!(d.serve_clusters(), 1);
        assert_eq!(s.resident_clusters(v.id()), Some(2));
        assert!((s.occupied_mb() - 200.0).abs() < 1e-9);
        assert_eq!(s.stats().extensions, 1);
    }

    #[test]
    fn target_caps_at_max_and_title_length() {
        let mut s = small_store();
        assert_eq!(s.target_clusters(1), 1);
        assert_eq!(s.target_clusters(3), 2);
        assert_eq!(s.target_clusters(5), 3);
        assert_eq!(s.target_clusters(500), 3, "capped at max_clusters");
        // A 150 MB title is 2 clusters long; its prefix can never be 3.
        let short = video(9, 150.0);
        for _ in 0..10 {
            s.on_request(&short);
        }
        assert_eq!(s.resident_clusters(short.id()), Some(2));
        // Whole-title prefix occupies the exact title size, not 2 × c.
        assert!((s.resident_mb(short.id()) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn growth_disabled_keeps_base_length() {
        let mut s = PrefixStore::new(PrefixConfig {
            growth_points: 0,
            admit_threshold: 0,
            ..PrefixConfig::default()
        })
        .unwrap();
        let v = video(1, 700.0);
        for _ in 0..20 {
            s.on_request(&v);
        }
        assert_eq!(s.resident_clusters(v.id()), Some(1));
        assert_eq!(s.stats().extensions, 0);
    }

    #[test]
    fn admission_threshold_delays_storing() {
        let mut s = PrefixStore::new(PrefixConfig {
            admit_threshold: 2,
            capacity: Megabytes::new(300.0),
            cluster_size: ClusterSize::new(Megabytes::new(100.0)),
            base_clusters: 1,
            max_clusters: 3,
            growth_points: 2,
        })
        .unwrap();
        let v = video(1, 700.0);
        for _ in 0..2 {
            assert_eq!(
                s.on_request(&v),
                PrefixDecision::NotAdmitted {
                    reason: PrefixRejectReason::BelowThreshold,
                }
            );
        }
        // Third request: points (3) > threshold (2); target is already 2.
        assert_eq!(s.on_request(&v), PrefixDecision::Admitted { clusters: 2 });
    }

    #[test]
    fn hotter_newcomer_evicts_coldest_first() {
        let mut s = small_store();
        s.on_request(&video(1, 700.0)); // 1 pt, 100 MB
        s.on_request(&video(2, 700.0)); // 1 pt, 100 MB
        s.on_request(&video(3, 700.0)); // 1 pt, 100 MB → store full
        let newcomer = video(4, 700.0);
        // 1 pt vs 1 pt: nobody strictly colder.
        assert_eq!(
            s.on_request(&newcomer),
            PrefixDecision::NotAdmitted {
                reason: PrefixRejectReason::NotPopularEnough,
            }
        );
        // 2 pts: evicts the lowest-id 1-pt resident only.
        let d = s.on_request(&newcomer);
        assert_eq!(
            d,
            PrefixDecision::AdmittedAfterEviction {
                evicted: vec![VideoId::new(1)],
                clusters: 1,
            }
        );
        assert_eq!(s.resident_clusters(VideoId::new(1)), None);
        assert_eq!(s.resident_clusters(VideoId::new(2)), Some(1));
        assert_eq!(s.stats().evictions, 1);
    }

    #[test]
    fn never_evicts_in_vain() {
        let mut s = PrefixStore::new(PrefixConfig {
            capacity: Megabytes::new(200.0),
            cluster_size: ClusterSize::new(Megabytes::new(100.0)),
            admit_threshold: 0,
            base_clusters: 2,
            max_clusters: 2,
            growth_points: 0,
        })
        .unwrap();
        s.on_request(&video(1, 700.0)); // 2 clusters = 200 MB, store full
        s.on_request(&video(1, 700.0)); // 2 pts
        let newcomer = video(2, 700.0);
        s.on_request(&newcomer); // 1 pt < resident's 2: nothing colder
        assert_eq!(s.stats().evictions, 0);
        assert_eq!(s.resident_clusters(VideoId::new(1)), Some(2));
        // A title bigger than the whole store can never be admitted.
        let mut tiny = PrefixStore::new(PrefixConfig {
            capacity: Megabytes::new(50.0),
            cluster_size: ClusterSize::new(Megabytes::new(100.0)),
            admit_threshold: 0,
            base_clusters: 1,
            max_clusters: 1,
            growth_points: 0,
        })
        .unwrap();
        assert_eq!(
            tiny.on_request(&video(3, 700.0)),
            PrefixDecision::NotAdmitted {
                reason: PrefixRejectReason::NotPopularEnough,
            }
        );
    }

    #[test]
    fn extension_blocked_by_full_store_still_hits() {
        let mut s = small_store();
        let a = video(1, 700.0);
        let b = video(2, 700.0);
        s.on_request(&a); // 100 MB
        s.on_request(&b); // 200 MB
        s.on_request(&b); // hit
        s.on_request(&b); // extends b to 2 clusters → 300 MB, full
                          // a's third request wants 2 clusters but there is no room: the
                          // store must still serve the resident single cluster.
        s.on_request(&a);
        let d = s.on_request(&a);
        assert_eq!(d, PrefixDecision::Hit { clusters: 1 });
        assert_eq!(s.resident_clusters(a.id()), Some(1));
        assert!((s.occupied_mb() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = |cfg: PrefixConfig| PrefixStore::new(cfg).unwrap_err();
        assert!(matches!(
            bad(PrefixConfig {
                capacity: Megabytes::ZERO,
                ..PrefixConfig::default()
            }),
            StorageError::InvalidPrefixConfig(_)
        ));
        assert!(matches!(
            bad(PrefixConfig {
                base_clusters: 0,
                ..PrefixConfig::default()
            }),
            StorageError::InvalidPrefixConfig(_)
        ));
        assert!(matches!(
            bad(PrefixConfig {
                base_clusters: 4,
                max_clusters: 2,
                ..PrefixConfig::default()
            }),
            StorageError::InvalidPrefixConfig(_)
        ));
    }

    /// A001-style differential check: an independent, deliberately naive
    /// reimplementation of the prefix discipline replays random request
    /// streams and must agree with [`PrefixStore`] decision for
    /// decision, byte for byte of occupancy.
    mod replay_properties {
        use super::*;
        use proptest::prelude::*;

        /// The independent model: plain data, no shared helpers.
        struct NaiveStore {
            capacity: f64,
            cluster: f64,
            threshold: u64,
            base: u32,
            max: u32,
            growth: u64,
            points: BTreeMap<u32, u64>,
            resident: BTreeMap<u32, (u32, f64)>,
        }

        impl NaiveStore {
            fn occupied(&self) -> f64 {
                self.resident.values().map(|&(_, mb)| mb).sum()
            }

            fn title_clusters(&self, size: f64) -> u32 {
                ((size / self.cluster).ceil() as u32).max(1)
            }

            fn prefix_bytes(&self, size: f64, k: u32) -> f64 {
                if k >= self.title_clusters(size) {
                    size
                } else {
                    self.cluster * k as f64
                }
            }

            fn target(&self, points: u64, size: f64) -> u32 {
                let grown = (points - 1).checked_div(self.growth).unwrap_or(0) as u32;
                (self.base + grown)
                    .min(self.max)
                    .min(self.title_clusters(size))
            }

            fn request(&mut self, id: u32, size: f64) -> PrefixDecision {
                let p = self.points.entry(id).or_insert(0);
                *p += 1;
                let points = *p;
                let target = self.target(points, size);
                if let Some(&(cur, cur_mb)) = self.resident.get(&id) {
                    if target > cur {
                        let new_mb = self.prefix_bytes(size, target);
                        if self.capacity - self.occupied() >= new_mb - cur_mb - f64::EPSILON {
                            self.resident.insert(id, (target, new_mb));
                            return PrefixDecision::HitExtended {
                                from_clusters: cur,
                                to_clusters: target,
                            };
                        }
                    }
                    return PrefixDecision::Hit { clusters: cur };
                }
                if points <= self.threshold {
                    return PrefixDecision::NotAdmitted {
                        reason: PrefixRejectReason::BelowThreshold,
                    };
                }
                let need = self.prefix_bytes(size, target);
                let mut colder: Vec<u32> = self
                    .resident
                    .keys()
                    .copied()
                    .filter(|v| self.points[v] < points)
                    .collect();
                colder.sort_by_key(|v| (self.points[v], *v));
                let mut victims = Vec::new();
                let mut free = self.capacity - self.occupied();
                let mut i = 0;
                while free < need && i < colder.len() {
                    free += self.resident[&colder[i]].1;
                    victims.push(colder[i]);
                    i += 1;
                }
                if free < need {
                    return PrefixDecision::NotAdmitted {
                        reason: if colder.is_empty() {
                            PrefixRejectReason::NotPopularEnough
                        } else {
                            PrefixRejectReason::DoesNotFit
                        },
                    };
                }
                for v in &victims {
                    self.resident.remove(v);
                }
                self.resident.insert(id, (target, need));
                if victims.is_empty() {
                    PrefixDecision::Admitted { clusters: target }
                } else {
                    PrefixDecision::AdmittedAfterEviction {
                        evicted: victims.into_iter().map(VideoId::new).collect(),
                        clusters: target,
                    }
                }
            }
        }

        proptest! {
            #[test]
            fn store_matches_independent_replay(
                requests in proptest::collection::vec((0u32..12, 1usize..9), 1..300),
                threshold in 0u64..3,
                base in 1u32..3,
                extra in 0u32..3,
                growth in 0u64..4,
                capacity_clusters in 2u32..10,
            ) {
                let cluster = 100.0;
                let capacity = capacity_clusters as f64 * cluster;
                let mut store = PrefixStore::new(PrefixConfig {
                    capacity: Megabytes::new(capacity),
                    cluster_size: ClusterSize::new(Megabytes::new(cluster)),
                    admit_threshold: threshold,
                    base_clusters: base,
                    max_clusters: base + extra,
                    growth_points: growth,
                }).unwrap();
                let mut naive = NaiveStore {
                    capacity,
                    cluster,
                    threshold,
                    base,
                    max: base + extra,
                    growth,
                    points: BTreeMap::new(),
                    resident: BTreeMap::new(),
                };
                for &(id, half_clusters) in &requests {
                    // Sizes land on half-cluster boundaries so partial
                    // trailing clusters are exercised.
                    let size = half_clusters as f64 * 50.0;
                    let v = video(id, size);
                    let got = store.on_request(&v);
                    let want = naive.request(id, size);
                    prop_assert_eq!(&got, &want, "decision diverged for v{} ({} MB)", id, size);
                    prop_assert!(
                        (store.occupied_mb() - naive.occupied()).abs() < 1e-6,
                        "occupancy diverged: {} vs {}",
                        store.occupied_mb(),
                        naive.occupied()
                    );
                    prop_assert!(store.occupied_mb() <= capacity + 1e-9);
                }
            }
        }
    }
}
