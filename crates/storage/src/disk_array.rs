//! A video server's disk array: striped storage of whole videos.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSize;
use crate::disk::Disk;
use crate::error::StorageError;
use crate::striping::StripeLayout;
use crate::video::{Megabytes, VideoId, VideoMeta};

/// A fixed array of disks storing videos by cyclic striping.
///
/// # Examples
///
/// ```
/// use vod_storage::{ClusterSize, DiskArray, Megabytes, VideoId, VideoMeta};
///
/// # fn main() -> Result<(), vod_storage::StorageError> {
/// let mut array = DiskArray::uniform(4, Megabytes::new(1_000.0),
///     ClusterSize::new(Megabytes::new(100.0)))?;
/// let video = VideoMeta::new(VideoId::new(0), "Z", Megabytes::new(700.0), 1.5);
/// let layout = array.store(&video)?;
/// assert_eq!(layout.parts(), 7);
/// assert!(array.contains(video.id()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskArray {
    disks: Vec<Disk>,
    cluster: ClusterSize,
    stored: BTreeMap<VideoId, StoredVideo>,
}

/// Bookkeeping for one stored video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoredVideo {
    size: Megabytes,
    layout: StripeLayout,
}

impl DiskArray {
    /// Creates an array of identical empty disks.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NoDisks`] when `disk_count` is zero.
    pub fn uniform(
        disk_count: usize,
        disk_capacity: Megabytes,
        cluster: ClusterSize,
    ) -> Result<Self, StorageError> {
        if disk_count == 0 {
            return Err(StorageError::NoDisks);
        }
        Ok(DiskArray {
            disks: vec![Disk::new(disk_capacity); disk_count],
            cluster,
            stored: BTreeMap::new(),
        })
    }

    /// Number of disks.
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// The common cluster size.
    pub fn cluster_size(&self) -> ClusterSize {
        self.cluster
    }

    /// Read access to one disk.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::UnknownDisk`] for an out-of-range index.
    pub fn disk(&self, index: usize) -> Result<&Disk, StorageError> {
        self.disks
            .get(index)
            .ok_or(StorageError::UnknownDisk(index))
    }

    /// Total capacity across all disks.
    pub fn total_capacity(&self) -> Megabytes {
        self.disks.iter().map(Disk::capacity).sum()
    }

    /// Total free space across all disks.
    pub fn total_free(&self) -> Megabytes {
        self.disks.iter().map(Disk::free).sum()
    }

    /// Returns true if `video` would fit right now — the pseudocode's
    /// *"IF (Disks can tolerate the Video)"* check. Because parts are
    /// placed cyclically, each disk must fit its own share of parts.
    pub fn can_tolerate(&self, video: &VideoMeta) -> bool {
        let layout = StripeLayout::for_video(video.size(), self.cluster, self.disks.len());
        (0..self.disks.len()).all(|d| {
            let share = self.share_of_disk(&layout, video.size(), d);
            self.disks[d].fits(share)
        })
    }

    /// Stores `video` by cyclic striping.
    ///
    /// # Errors
    ///
    /// * [`StorageError::AlreadyStored`] if the id is already resident.
    /// * [`StorageError::InsufficientCapacity`] if any disk's share does
    ///   not fit (no partial writes are left behind).
    pub fn store(&mut self, video: &VideoMeta) -> Result<StripeLayout, StorageError> {
        if self.stored.contains_key(&video.id()) {
            return Err(StorageError::AlreadyStored(video.id()));
        }
        let layout = StripeLayout::for_video(video.size(), self.cluster, self.disks.len());
        if !self.can_tolerate(video) {
            return Err(StorageError::InsufficientCapacity {
                needed_mb: video.size().as_f64(),
                available_mb: self.total_free().as_f64(),
            });
        }
        for d in 0..self.disks.len() {
            let share = self.share_of_disk(&layout, video.size(), d);
            self.disks[d]
                .allocate(share)
                .expect("can_tolerate checked every disk");
        }
        self.stored.insert(
            video.id(),
            StoredVideo {
                size: video.size(),
                layout: layout.clone(),
            },
        );
        Ok(layout)
    }

    /// Removes `video`, freeing its space.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::UnknownVideo`] if it is not stored.
    pub fn remove(&mut self, video: VideoId) -> Result<(), StorageError> {
        let stored = self
            .stored
            .remove(&video)
            .ok_or(StorageError::UnknownVideo(video))?;
        for d in 0..self.disks.len() {
            let share = self.share_of_disk(&stored.layout, stored.size, d);
            self.disks[d].release(share);
        }
        Ok(())
    }

    /// Returns true if `video` is stored in this array.
    pub fn contains(&self, video: VideoId) -> bool {
        self.stored.contains_key(&video)
    }

    /// The stripe layout of a stored video.
    pub fn layout(&self, video: VideoId) -> Option<&StripeLayout> {
        self.stored.get(&video).map(|s| &s.layout)
    }

    /// Ids of all stored videos, in id order.
    pub fn stored_ids(&self) -> impl ExactSizeIterator<Item = VideoId> + '_ {
        self.stored.keys().copied()
    }

    /// Number of stored videos.
    pub fn stored_count(&self) -> usize {
        self.stored.len()
    }

    /// Megabytes of `video`'s parts that land on `disk`.
    fn share_of_disk(&self, layout: &StripeLayout, size: Megabytes, disk: usize) -> Megabytes {
        layout
            .parts_on_disk(disk)
            .into_iter()
            .map(|part| self.cluster.part_size(size, part))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video(id: u32, mb: f64) -> VideoMeta {
        VideoMeta::new(VideoId::new(id), format!("t{id}"), Megabytes::new(mb), 1.5)
    }

    fn array(disks: usize, cap_mb: f64) -> DiskArray {
        DiskArray::uniform(
            disks,
            Megabytes::new(cap_mb),
            ClusterSize::new(Megabytes::new(100.0)),
        )
        .unwrap()
    }

    #[test]
    fn store_spreads_shares_across_disks() {
        let mut a = array(4, 1_000.0);
        let v = video(0, 730.0); // 8 parts: 7×100 + 30
        a.store(&v).unwrap();
        // Parts per disk: d0={0,4}, d1={1,5}, d2={2,6}, d3={3,7}.
        assert_eq!(a.disk(0).unwrap().used().as_f64(), 200.0);
        assert_eq!(a.disk(3).unwrap().used().as_f64(), 130.0); // part 7 = 30 MB
        assert!(a.contains(v.id()));
        assert_eq!(a.stored_count(), 1);
        assert_eq!(a.layout(v.id()).unwrap().parts(), 8);
    }

    #[test]
    fn duplicate_store_rejected() {
        let mut a = array(2, 1_000.0);
        let v = video(0, 100.0);
        a.store(&v).unwrap();
        assert_eq!(a.store(&v), Err(StorageError::AlreadyStored(v.id())));
    }

    #[test]
    fn remove_frees_exactly_the_shares() {
        let mut a = array(3, 1_000.0);
        let v = video(0, 500.0);
        a.store(&v).unwrap();
        let used_before: f64 = (0..3).map(|d| a.disk(d).unwrap().used().as_f64()).sum();
        assert!((used_before - 500.0).abs() < 1e-9);
        a.remove(v.id()).unwrap();
        assert_eq!(a.total_free(), a.total_capacity());
        assert!(!a.contains(v.id()));
        assert_eq!(a.remove(v.id()), Err(StorageError::UnknownVideo(v.id())));
    }

    #[test]
    fn can_tolerate_respects_per_disk_shares() {
        // Total space would fit, but disk 0's share (200 MB) does not.
        let mut a = array(2, 150.0);
        let v = video(0, 300.0); // parts on d0: {0,2} = 200 MB > 150
        assert!(!a.can_tolerate(&v));
        assert!(matches!(
            a.store(&v),
            Err(StorageError::InsufficientCapacity { .. })
        ));
        // Nothing was partially written.
        assert_eq!(a.total_free(), a.total_capacity());
    }

    #[test]
    fn fills_to_capacity_then_rejects() {
        let mut a = array(2, 200.0);
        a.store(&video(0, 400.0)).unwrap();
        assert!(!a.can_tolerate(&video(1, 100.0)));
        a.remove(VideoId::new(0)).unwrap();
        assert!(a.can_tolerate(&video(1, 100.0)));
    }

    #[test]
    fn zero_disks_rejected() {
        assert_eq!(
            DiskArray::uniform(0, Megabytes::new(1.0), ClusterSize::default()).unwrap_err(),
            StorageError::NoDisks
        );
    }

    #[test]
    fn unknown_disk_index() {
        let a = array(2, 100.0);
        assert!(matches!(a.disk(5), Err(StorageError::UnknownDisk(5))));
    }

    #[test]
    fn stored_ids_in_order() {
        let mut a = array(4, 10_000.0);
        for i in [3u32, 1, 2] {
            a.store(&video(i, 100.0)).unwrap();
        }
        let ids: Vec<u32> = a.stored_ids().map(|v| v.index() as u32).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
