//! Error types for the storage substrate.

use std::error::Error;
use std::fmt;

use crate::video::VideoId;

/// Errors produced by disks, arrays and the DMA cache.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StorageError {
    /// A write did not fit on a disk.
    InsufficientCapacity {
        /// Megabytes that were needed.
        needed_mb: f64,
        /// Megabytes that were free.
        available_mb: f64,
    },
    /// The video is not stored here.
    UnknownVideo(VideoId),
    /// The video is already stored here.
    AlreadyStored(VideoId),
    /// A disk array was configured with zero disks.
    NoDisks,
    /// A disk index was out of range for the array.
    UnknownDisk(usize),
    /// A prefix store was configured with inconsistent parameters.
    InvalidPrefixConfig(&'static str),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::InsufficientCapacity {
                needed_mb,
                available_mb,
            } => write!(
                f,
                "insufficient disk capacity: need {needed_mb} MB, {available_mb} MB free"
            ),
            StorageError::UnknownVideo(id) => write!(f, "video {id} is not stored here"),
            StorageError::AlreadyStored(id) => write!(f, "video {id} is already stored here"),
            StorageError::NoDisks => write!(f, "a disk array needs at least one disk"),
            StorageError::UnknownDisk(i) => write!(f, "disk index {i} out of range"),
            StorageError::InvalidPrefixConfig(reason) => {
                write!(f, "invalid prefix-store config: {reason}")
            }
        }
    }
}

impl Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(StorageError::NoDisks.to_string().contains("at least one"));
        assert!(StorageError::UnknownVideo(VideoId::new(7))
            .to_string()
            .contains("v7"));
        assert!(StorageError::InsufficientCapacity {
            needed_mb: 10.0,
            available_mb: 3.0
        }
        .to_string()
        .contains("10 MB"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StorageError>();
    }
}
