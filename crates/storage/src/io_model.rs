//! A simple disk I/O timing model: seek + transfer, with stripe
//! parallelism.
//!
//! The paper motivates striping partly by read parallelism ("we propose
//! the use of as many disks as possible"); this model quantifies it for
//! the benches: reading a video striped over `n` disks overlaps the
//! transfers, so sustained throughput scales with
//! [`StripeLayout::disks_used`].

use serde::{Deserialize, Serialize};

use crate::striping::StripeLayout;
use crate::video::Megabytes;

/// Seek + sequential-transfer timing of one disk.
#[derive(Debug, Copy, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskIoModel {
    /// Average positioning time per part read, in milliseconds.
    pub seek_ms: f64,
    /// Sustained sequential transfer rate, in MB/s.
    pub transfer_mb_per_s: f64,
}

impl Default for DiskIoModel {
    /// A late-1990s SCSI disk: ~9 ms average seek, ~12 MB/s sustained.
    fn default() -> Self {
        DiskIoModel {
            seek_ms: 9.0,
            transfer_mb_per_s: 12.0,
        }
    }
}

impl DiskIoModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `seek_ms` is negative or `transfer_mb_per_s` is not
    /// strictly positive.
    pub fn new(seek_ms: f64, transfer_mb_per_s: f64) -> Self {
        assert!(seek_ms >= 0.0 && seek_ms.is_finite(), "invalid seek time");
        assert!(
            transfer_mb_per_s > 0.0 && transfer_mb_per_s.is_finite(),
            "invalid transfer rate"
        );
        DiskIoModel {
            seek_ms,
            transfer_mb_per_s,
        }
    }

    /// Time to read `size` from one disk with a single seek.
    pub fn read_secs(&self, size: Megabytes) -> f64 {
        self.seek_ms / 1_000.0 + size.as_f64() / self.transfer_mb_per_s
    }

    /// Time to read a whole striped video when all used disks stream
    /// their parts concurrently: the slowest disk bounds the read.
    ///
    /// Each disk pays one seek per part it holds (parts of one video are
    /// not contiguous once other titles share the disk).
    pub fn striped_read_secs(&self, layout: &StripeLayout, video_size: Megabytes) -> f64 {
        let parts = layout.parts();
        let part_mb = video_size.as_f64() / parts as f64;
        (0..layout.disk_count())
            .map(|d| {
                let k = layout.load_of_disk(d);
                k as f64 * (self.seek_ms / 1_000.0 + part_mb / self.transfer_mb_per_s)
            })
            .fold(0.0, f64::max)
    }

    /// Effective sustained throughput (MB/s) reading a striped video.
    pub fn striped_throughput_mb_per_s(&self, layout: &StripeLayout, video_size: Megabytes) -> f64 {
        let t = self.striped_read_secs(layout, video_size);
        if t <= 0.0 {
            0.0
        } else {
            video_size.as_f64() / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_read_is_seek_plus_transfer() {
        let io = DiskIoModel::new(10.0, 10.0);
        // 10 ms + 100/10 s = 10.01 s
        assert!((io.read_secs(Megabytes::new(100.0)) - 10.01).abs() < 1e-9);
    }

    #[test]
    fn striping_parallelizes_reads() {
        let io = DiskIoModel::new(0.0, 10.0);
        let size = Megabytes::new(400.0);
        let serial = io.striped_read_secs(&StripeLayout::cyclic(4, 1), size);
        let parallel = io.striped_read_secs(&StripeLayout::cyclic(4, 4), size);
        assert!((serial - 40.0).abs() < 1e-9);
        assert!((parallel - 10.0).abs() < 1e-9);
        assert!(
            (io.striped_throughput_mb_per_s(&StripeLayout::cyclic(4, 4), size) - 40.0).abs() < 1e-9
        );
    }

    #[test]
    fn slowest_disk_bounds_the_read() {
        let io = DiskIoModel::new(0.0, 10.0);
        // 5 parts on 2 disks: disk 0 holds 3 parts.
        let layout = StripeLayout::cyclic(5, 2);
        let size = Megabytes::new(500.0);
        let t = io.striped_read_secs(&layout, size);
        assert!((t - 30.0).abs() < 1e-9); // 3 parts × 100 MB / 10 MB/s
    }

    #[test]
    fn seeks_accumulate_per_part() {
        let io = DiskIoModel::new(1_000.0, 1e12); // pure seek cost
        let layout = StripeLayout::cyclic(6, 3);
        let t = io.striped_read_secs(&layout, Megabytes::new(6.0));
        assert!((t - 2.0).abs() < 1e-6); // 2 parts per disk × 1 s
    }

    #[test]
    #[should_panic(expected = "transfer rate")]
    fn invalid_rate_rejected() {
        let _ = DiskIoModel::new(1.0, 0.0);
    }

    #[test]
    fn default_is_period_plausible() {
        let io = DiskIoModel::default();
        assert!(io.seek_ms > 0.0 && io.transfer_mb_per_s > 0.0);
    }
}
