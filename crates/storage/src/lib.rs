//! Video-server storage substrate for the distributed VoD service.
//!
//! Implements the storage half of the ICDCS 2000 paper:
//!
//! * [`video`] — video titles, sizes, bitrates and libraries;
//! * [`cluster`] — the fixed cluster size `c` (MB/cluster) that divides a
//!   video into `p = size / c` parts;
//! * [`striping`] — **cyclic data striping**: part `i` stored on disk
//!   `i mod n` (the paper's Figure 3);
//! * [`disk`] / [`disk_array`] — capacity-tracked disks and arrays;
//! * [`dma`] — the **Disk Manipulation Algorithm** (Figure 2): a
//!   popularity-point cache that admits requested titles while space
//!   lasts and then replaces the least-popular resident title;
//! * [`popularity`] — the request-point bookkeeping behind the
//!   "most popular" concept;
//! * [`prefix`] — popularity-sized title *prefixes* for regional proxy
//!   servers: serve session startup locally, fetch the rest from the
//!   origin;
//! * [`io_model`] — a simple seek+transfer disk timing model;
//! * [`distributed`] — the paper's *future work* extension: striping
//!   across servers instead of disks, by strip popularity.
//!
//! # Example
//!
//! ```
//! use vod_storage::cluster::ClusterSize;
//! use vod_storage::dma::{DmaCache, DmaConfig, DmaDecision};
//! use vod_storage::video::{Megabytes, VideoId, VideoMeta};
//!
//! # fn main() -> Result<(), vod_storage::StorageError> {
//! let mut cache = DmaCache::new(DmaConfig {
//!     disk_count: 4,
//!     disk_capacity: Megabytes::new(2_000.0),
//!     cluster_size: ClusterSize::new(Megabytes::new(100.0)),
//!     ..DmaConfig::default()
//! })?;
//! let video = VideoMeta::new(VideoId::new(1), "Zorba", Megabytes::new(700.0), 1.5);
//! // First request: free space → the video is written to the disks.
//! assert!(matches!(cache.on_request(&video), DmaDecision::Admitted { .. }));
//! // Second request: already resident → a popularity point.
//! assert!(matches!(cache.on_request(&video), DmaDecision::Hit));
//! assert!(cache.contains(video.id()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod disk;
pub mod disk_array;
pub mod distributed;
pub mod dma;
pub mod error;
pub mod io_model;
pub mod popularity;
pub mod prefix;
pub mod striping;
pub mod video;

pub use cluster::ClusterSize;
pub use disk_array::DiskArray;
pub use dma::{DmaCache, DmaConfig, DmaDecision};
pub use error::StorageError;
pub use prefix::{PrefixConfig, PrefixDecision, PrefixStore};
pub use striping::StripeLayout;
pub use video::{Megabytes, VideoId, VideoMeta};
