//! Video titles and libraries.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A validated, non-negative size in megabytes.
///
/// # Examples
///
/// ```
/// use vod_storage::Megabytes;
///
/// let size = Megabytes::new(700.0);
/// assert_eq!(size.as_f64(), 700.0);
/// assert_eq!(size.as_megabits(), 5_600.0);
/// ```
#[derive(Copy, Clone, PartialEq, PartialOrd, Debug, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Megabytes(f64);

impl Megabytes {
    /// Zero megabytes.
    pub const ZERO: Megabytes = Megabytes(0.0);

    /// Creates a size value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative, NaN or infinite; use
    /// [`Megabytes::try_new`] for fallible construction.
    pub fn new(value: f64) -> Self {
        Self::try_new(value).expect("size must be finite and non-negative")
    }

    /// Creates a size value, or `None` for negative/NaN/infinite input.
    pub fn try_new(value: f64) -> Option<Self> {
        if value.is_finite() && value >= 0.0 {
            Some(Megabytes(value))
        } else {
            None
        }
    }

    /// The raw value in megabytes.
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// The value in megabits (×8), the unit used for network transfers.
    pub fn as_megabits(self) -> f64 {
        self.0 * 8.0
    }

    /// Returns true if this is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Megabytes) -> Megabytes {
        Megabytes((self.0 - rhs.0).max(0.0))
    }
}

impl fmt::Display for Megabytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MB", self.0)
    }
}

impl std::ops::Add for Megabytes {
    type Output = Megabytes;
    fn add(self, rhs: Megabytes) -> Megabytes {
        Megabytes(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Megabytes {
    fn add_assign(&mut self, rhs: Megabytes) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Megabytes {
    fn sum<I: Iterator<Item = Megabytes>>(iter: I) -> Megabytes {
        iter.fold(Megabytes::ZERO, |a, b| a + b)
    }
}

/// Identifier of a video title, unique across the whole service.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VideoId(u32);

impl VideoId {
    /// Creates a video id from a raw index.
    pub const fn new(raw: u32) -> Self {
        VideoId(raw)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VideoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Metadata of one video title.
///
/// The playback bitrate is in Mbps; the paper targets "the minimum video
/// frame rate for which a video can be considered decent", which for
/// MPEG-1-era content is roughly 1.5 Mbps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoMeta {
    id: VideoId,
    title: String,
    size: Megabytes,
    bitrate_mbps: f64,
}

impl VideoMeta {
    /// Creates video metadata.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate_mbps` is not strictly positive and finite, or if
    /// `size` is zero.
    pub fn new(id: VideoId, title: impl Into<String>, size: Megabytes, bitrate_mbps: f64) -> Self {
        assert!(
            bitrate_mbps.is_finite() && bitrate_mbps > 0.0,
            "bitrate must be positive"
        );
        assert!(!size.is_zero(), "a video has a positive size");
        VideoMeta {
            id,
            title: title.into(),
            size,
            bitrate_mbps,
        }
    }

    /// The video's id.
    pub fn id(&self) -> VideoId {
        self.id
    }

    /// The human-readable title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Total size.
    pub fn size(&self) -> Megabytes {
        self.size
    }

    /// Playback bitrate in Mbps.
    pub fn bitrate_mbps(&self) -> f64 {
        self.bitrate_mbps
    }

    /// Playback duration in seconds at the nominal bitrate.
    pub fn duration_secs(&self) -> f64 {
        self.size.as_megabits() / self.bitrate_mbps
    }
}

/// The service-wide catalog of all video titles.
///
/// # Examples
///
/// ```
/// use vod_storage::video::{Megabytes, VideoId, VideoLibrary, VideoMeta};
///
/// let mut lib = VideoLibrary::new();
/// let id = VideoId::new(0);
/// lib.insert(VideoMeta::new(id, "Z", Megabytes::new(500.0), 1.5));
/// assert_eq!(lib.get(id).unwrap().title(), "Z");
/// assert_eq!(lib.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct VideoLibrary {
    videos: BTreeMap<VideoId, VideoMeta>,
}

impl VideoLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a title, returning the previous metadata for
    /// that id if any.
    pub fn insert(&mut self, meta: VideoMeta) -> Option<VideoMeta> {
        self.videos.insert(meta.id(), meta)
    }

    /// Looks up a title.
    pub fn get(&self, id: VideoId) -> Option<&VideoMeta> {
        self.videos.get(&id)
    }

    /// Number of titles.
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// Returns true if the library has no titles.
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// Iterates over all titles in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &VideoMeta> {
        self.videos.values()
    }

    /// All ids in order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = VideoId> + '_ {
        self.videos.keys().copied()
    }

    /// Finds a title by its name.
    pub fn find_by_title(&self, title: &str) -> Option<&VideoMeta> {
        self.videos.values().find(|v| v.title() == title)
    }

    /// Total size of all titles.
    pub fn total_size(&self) -> Megabytes {
        self.videos.values().map(VideoMeta::size).sum()
    }
}

impl FromIterator<VideoMeta> for VideoLibrary {
    fn from_iter<I: IntoIterator<Item = VideoMeta>>(iter: I) -> Self {
        let mut lib = VideoLibrary::new();
        for v in iter {
            lib.insert(v);
        }
        lib
    }
}

impl Extend<VideoMeta> for VideoLibrary {
    fn extend<I: IntoIterator<Item = VideoMeta>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video(id: u32, mb: f64) -> VideoMeta {
        VideoMeta::new(VideoId::new(id), format!("t{id}"), Megabytes::new(mb), 1.5)
    }

    #[test]
    fn megabytes_validation() {
        assert!(Megabytes::try_new(-1.0).is_none());
        assert!(Megabytes::try_new(f64::NAN).is_none());
        assert_eq!(Megabytes::new(3.0).as_f64(), 3.0);
        assert_eq!(Megabytes::new(1.0).as_megabits(), 8.0);
    }

    #[test]
    fn megabytes_arithmetic() {
        let a = Megabytes::new(5.0);
        let b = Megabytes::new(3.0);
        assert_eq!((a + b).as_f64(), 8.0);
        assert_eq!(b.saturating_sub(a), Megabytes::ZERO);
        assert_eq!(a.saturating_sub(b).as_f64(), 2.0);
        let sum: Megabytes = [a, b].into_iter().sum();
        assert_eq!(sum.as_f64(), 8.0);
    }

    #[test]
    fn meta_accessors_and_duration() {
        let v = VideoMeta::new(VideoId::new(3), "Movie", Megabytes::new(675.0), 1.5);
        assert_eq!(v.id(), VideoId::new(3));
        assert_eq!(v.title(), "Movie");
        assert_eq!(v.size().as_f64(), 675.0);
        // 675 MB * 8 / 1.5 Mbps = 3600 s = 1 hour.
        assert!((v.duration_secs() - 3600.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bitrate")]
    fn zero_bitrate_rejected() {
        let _ = VideoMeta::new(VideoId::new(0), "x", Megabytes::new(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_size_rejected() {
        let _ = VideoMeta::new(VideoId::new(0), "x", Megabytes::ZERO, 1.0);
    }

    #[test]
    fn library_crud() {
        let mut lib = VideoLibrary::new();
        assert!(lib.is_empty());
        assert!(lib.insert(video(1, 100.0)).is_none());
        assert!(lib.insert(video(2, 200.0)).is_none());
        // Replacing returns the old metadata.
        let old = lib.insert(video(1, 150.0)).unwrap();
        assert_eq!(old.size().as_f64(), 100.0);
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.get(VideoId::new(2)).unwrap().size().as_f64(), 200.0);
        assert_eq!(lib.get(VideoId::new(9)), None);
        assert_eq!(lib.total_size().as_f64(), 350.0);
        assert_eq!(lib.find_by_title("t2").unwrap().id(), VideoId::new(2));
        assert_eq!(
            lib.ids().collect::<Vec<_>>(),
            vec![VideoId::new(1), VideoId::new(2)]
        );
    }

    #[test]
    fn library_from_iterator_and_extend() {
        let mut lib: VideoLibrary = (0..5).map(|i| video(i, 10.0)).collect();
        assert_eq!(lib.len(), 5);
        lib.extend((5..8).map(|i| video(i, 10.0)));
        assert_eq!(lib.len(), 8);
    }
}
