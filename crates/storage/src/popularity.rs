//! Request-point bookkeeping behind the "most popular" concept.
//!
//! *"It counts the requests that are made for every video title"* — every
//! request grants the title a point; the DMA compares points to decide
//! admissions and evictions.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::video::VideoId;

/// Per-title request points.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PopularityTracker {
    points: BTreeMap<VideoId, u64>,
}

impl PopularityTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants one point to `video` and returns its new total.
    pub fn award(&mut self, video: VideoId) -> u64 {
        let p = self.points.entry(video).or_insert(0);
        *p += 1;
        *p
    }

    /// Current points of `video` (0 if never requested).
    pub fn points(&self, video: VideoId) -> u64 {
        self.points.get(&video).copied().unwrap_or(0)
    }

    /// Number of titles ever awarded a point.
    pub fn tracked(&self) -> usize {
        self.points.len()
    }

    /// The least popular title among `candidates` (lowest points,
    /// tie-broken by lowest id for determinism). Returns `None` when
    /// `candidates` is empty.
    pub fn least_popular<I>(&self, candidates: I) -> Option<VideoId>
    where
        I: IntoIterator<Item = VideoId>,
    {
        candidates.into_iter().min_by_key(|&v| (self.points(v), v))
    }

    /// The most popular titles in descending point order (ties by id).
    pub fn ranking(&self) -> Vec<(VideoId, u64)> {
        let mut v: Vec<(VideoId, u64)> = self.points.iter().map(|(&id, &p)| (id, p)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Resets all points (e.g. for epoch-based aging experiments).
    pub fn reset(&mut self) {
        self.points.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn award_accumulates() {
        let mut t = PopularityTracker::new();
        assert_eq!(t.points(VideoId::new(1)), 0);
        assert_eq!(t.award(VideoId::new(1)), 1);
        assert_eq!(t.award(VideoId::new(1)), 2);
        assert_eq!(t.points(VideoId::new(1)), 2);
        assert_eq!(t.tracked(), 1);
    }

    #[test]
    fn least_popular_picks_minimum() {
        let mut t = PopularityTracker::new();
        for _ in 0..3 {
            t.award(VideoId::new(1));
        }
        t.award(VideoId::new(2));
        for _ in 0..2 {
            t.award(VideoId::new(3));
        }
        let lp = t.least_popular([VideoId::new(1), VideoId::new(2), VideoId::new(3)]);
        assert_eq!(lp, Some(VideoId::new(2)));
    }

    #[test]
    fn least_popular_ties_break_by_id() {
        let t = PopularityTracker::new();
        let lp = t.least_popular([VideoId::new(5), VideoId::new(2), VideoId::new(9)]);
        assert_eq!(lp, Some(VideoId::new(2)));
        assert_eq!(t.least_popular(std::iter::empty()), None);
    }

    #[test]
    fn unrequested_candidates_count_as_zero() {
        let mut t = PopularityTracker::new();
        t.award(VideoId::new(1));
        let lp = t.least_popular([VideoId::new(1), VideoId::new(7)]);
        assert_eq!(lp, Some(VideoId::new(7)));
    }

    #[test]
    fn ranking_descends() {
        let mut t = PopularityTracker::new();
        for _ in 0..5 {
            t.award(VideoId::new(1));
        }
        for _ in 0..9 {
            t.award(VideoId::new(2));
        }
        t.award(VideoId::new(3));
        let r = t.ranking();
        assert_eq!(
            r,
            vec![
                (VideoId::new(2), 9),
                (VideoId::new(1), 5),
                (VideoId::new(3), 1)
            ]
        );
    }

    #[test]
    fn reset_clears() {
        let mut t = PopularityTracker::new();
        t.award(VideoId::new(1));
        t.reset();
        assert_eq!(t.tracked(), 0);
        assert_eq!(t.points(VideoId::new(1)), 0);
    }
}
