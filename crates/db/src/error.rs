//! Error types for the database module.

use std::error::Error;
use std::fmt;

use vod_net::{LinkId, NodeId};
use vod_storage::video::VideoId;

/// Errors produced by database operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DbError {
    /// No entry exists for this server node.
    UnknownServer(NodeId),
    /// No entry exists for this link.
    UnknownLink(LinkId),
    /// The video id is not in the service-wide library.
    UnknownVideo(VideoId),
    /// The credential was rejected (not registered as an administrator).
    AccessDenied,
    /// A server entry already exists for this node.
    ServerExists(NodeId),
    /// A link entry already exists for this link.
    LinkExists(LinkId),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownServer(id) => write!(f, "no server entry for node {id}"),
            DbError::UnknownLink(id) => write!(f, "no link entry for link {id}"),
            DbError::UnknownVideo(id) => write!(f, "video {id} is not in the library"),
            DbError::AccessDenied => write!(f, "credential lacks limited-access rights"),
            DbError::ServerExists(id) => write!(f, "server entry for node {id} already exists"),
            DbError::LinkExists(id) => write!(f, "link entry for link {id} already exists"),
        }
    }
}

impl Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DbError::AccessDenied.to_string().contains("limited-access"));
        assert!(DbError::UnknownServer(NodeId::new(2))
            .to_string()
            .contains("n2"));
        assert!(DbError::UnknownVideo(VideoId::new(4))
            .to_string()
            .contains("v4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DbError>();
    }
}
