//! Database entries: one per server and one per link.
//!
//! Each entry is conceptually split into the paper's two sub-modules:
//! the *full-access* part (the titles available on a server) and the
//! *limited-access* part (network and configuration information).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use vod_net::units::Fraction;
use vod_net::{LinkId, Mbps, NodeId};
use vod_sim::SimTime;
use vod_storage::video::{Megabytes, VideoId};

/// Per-server configuration recorded during service initialization
/// ("Network links' bandwidth … the video titles available on each VoD
/// server") and updated by administrators on configuration changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Number of disks in the server's array.
    pub disk_count: usize,
    /// Space allocated to the VoD service per disk.
    pub disk_capacity: Megabytes,
    /// The bandwidth of the server's connection to the network.
    pub access_bandwidth: Mbps,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            disk_count: 4,
            disk_capacity: Megabytes::new(10_000.0),
            access_bandwidth: Mbps::new(2.0),
        }
    }
}

/// One server's database entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerEntry {
    node: NodeId,
    /// Full-access sub-module: the titles this server can provide.
    titles: BTreeSet<VideoId>,
    /// Limited-access sub-module: configuration information.
    config: ServerConfig,
}

impl ServerEntry {
    /// Creates an entry with no titles.
    pub fn new(node: NodeId, config: ServerConfig) -> Self {
        ServerEntry {
            node,
            titles: BTreeSet::new(),
            config,
        }
    }

    /// The server's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Titles available on this server (full access).
    pub fn titles(&self) -> impl ExactSizeIterator<Item = VideoId> + '_ {
        self.titles.iter().copied()
    }

    /// Returns true if this server can provide `video`.
    pub fn has_title(&self, video: VideoId) -> bool {
        self.titles.contains(&video)
    }

    /// Number of titles listed.
    pub fn title_count(&self) -> usize {
        self.titles.len()
    }

    /// The limited-access configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    pub(crate) fn add_title(&mut self, video: VideoId) -> bool {
        self.titles.insert(video)
    }

    pub(crate) fn remove_title(&mut self, video: VideoId) -> bool {
        self.titles.remove(&video)
    }

    pub(crate) fn set_config(&mut self, config: ServerConfig) {
        self.config = config;
    }
}

/// One SNMP utilization reading, as inserted by the statistics module.
#[derive(Debug, Copy, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReading {
    /// When the reading was inserted.
    pub at: SimTime,
    /// Combined in+out traffic at that moment.
    pub used: Mbps,
    /// `used / capacity` per the paper's equation (5).
    pub utilization: Fraction,
}

/// Number of SNMP readings retained per link (at the paper's 2-minute
/// interval this is roughly one hour of history).
pub const READING_HISTORY: usize = 32;

/// One link's database entry (limited access only — users never see link
/// state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkEntry {
    link: LinkId,
    total_bandwidth: Mbps,
    last_reading: Option<UtilizationReading>,
    history: Vec<UtilizationReading>,
}

impl LinkEntry {
    /// Creates an entry with no readings yet.
    pub fn new(link: LinkId, total_bandwidth: Mbps) -> Self {
        LinkEntry {
            link,
            total_bandwidth,
            last_reading: None,
            history: Vec::new(),
        }
    }

    /// The link this entry describes.
    pub fn link(&self) -> LinkId {
        self.link
    }

    /// The administrator-entered total bandwidth.
    pub fn total_bandwidth(&self) -> Mbps {
        self.total_bandwidth
    }

    /// The latest SNMP reading, if any has been inserted.
    pub fn last_reading(&self) -> Option<UtilizationReading> {
        self.last_reading
    }

    /// Age of the latest reading at `now` (`None` before the first poll).
    pub fn reading_age(&self, now: SimTime) -> Option<vod_sim::SimDuration> {
        self.last_reading.map(|r| now.duration_since(r.at))
    }

    /// The retained reading history, oldest first (at most
    /// [`READING_HISTORY`] entries, the newest equal to
    /// [`LinkEntry::last_reading`]).
    pub fn history(&self) -> &[UtilizationReading] {
        &self.history
    }

    /// Exponentially-weighted moving average of the recorded traffic,
    /// `alpha` being the weight of each newer reading (1.0 = latest
    /// reading only). Returns `None` before the first reading.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not within `(0, 1]`.
    pub fn smoothed_used(&self, alpha: f64) -> Option<Mbps> {
        assert!(
            alpha > 0.0 && alpha <= 1.0 && alpha.is_finite(),
            "alpha must be in (0, 1]"
        );
        let mut iter = self.history.iter();
        let first = iter.next()?;
        let mut acc = first.used.as_f64();
        for r in iter {
            acc = acc + alpha * (r.used.as_f64() - acc);
        }
        Some(Mbps::new(acc))
    }

    pub(crate) fn record(&mut self, reading: UtilizationReading) {
        self.last_reading = Some(reading);
        if self.history.len() == READING_HISTORY {
            self.history.remove(0);
        }
        self.history.push(reading);
    }

    pub(crate) fn set_total_bandwidth(&mut self, bw: Mbps) {
        self.total_bandwidth = bw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_entry_title_management() {
        let mut e = ServerEntry::new(NodeId::new(1), ServerConfig::default());
        assert_eq!(e.title_count(), 0);
        assert!(e.add_title(VideoId::new(5)));
        assert!(!e.add_title(VideoId::new(5)));
        assert!(e.has_title(VideoId::new(5)));
        assert!(!e.has_title(VideoId::new(6)));
        assert_eq!(e.titles().collect::<Vec<_>>(), vec![VideoId::new(5)]);
        assert!(e.remove_title(VideoId::new(5)));
        assert!(!e.remove_title(VideoId::new(5)));
        assert_eq!(e.node(), NodeId::new(1));
    }

    #[test]
    fn server_config_update() {
        let mut e = ServerEntry::new(NodeId::new(0), ServerConfig::default());
        e.set_config(ServerConfig {
            disk_count: 8,
            ..ServerConfig::default()
        });
        assert_eq!(e.config().disk_count, 8);
    }

    fn reading(secs: u64, used: f64) -> UtilizationReading {
        UtilizationReading {
            at: SimTime::from_secs(secs),
            used: Mbps::new(used),
            utilization: Fraction::new(used / 2.0),
        }
    }

    #[test]
    fn history_is_bounded_and_ordered() {
        let mut e = LinkEntry::new(LinkId::new(0), Mbps::new(2.0));
        assert!(e.history().is_empty());
        for i in 0..(READING_HISTORY as u64 + 10) {
            e.record(reading(i * 120, (i % 5) as f64 * 0.1));
        }
        assert_eq!(e.history().len(), READING_HISTORY);
        // Oldest entries were dropped; the newest equals last_reading.
        assert_eq!(e.history().last().copied(), e.last_reading());
        assert!(e.history().windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn smoothing_blends_history() {
        let mut e = LinkEntry::new(LinkId::new(0), Mbps::new(2.0));
        assert_eq!(e.smoothed_used(0.5), None);
        e.record(reading(0, 0.0));
        e.record(reading(120, 2.0));
        // EWMA: 0 + 0.5*(2-0) = 1.0.
        assert!((e.smoothed_used(0.5).unwrap().as_f64() - 1.0).abs() < 1e-12);
        // alpha = 1: latest reading wins outright.
        assert!((e.smoothed_used(1.0).unwrap().as_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let mut e = LinkEntry::new(LinkId::new(0), Mbps::new(2.0));
        e.record(reading(0, 1.0));
        let _ = e.smoothed_used(0.0);
    }

    #[test]
    fn link_entry_readings() {
        let mut e = LinkEntry::new(LinkId::new(0), Mbps::new(2.0));
        assert_eq!(e.last_reading(), None);
        assert_eq!(e.reading_age(SimTime::from_secs(10)), None);
        let reading = UtilizationReading {
            at: SimTime::from_secs(60),
            used: Mbps::new(1.0),
            utilization: Fraction::new(0.5),
        };
        e.record(reading);
        assert_eq!(e.last_reading(), Some(reading));
        assert_eq!(
            e.reading_age(SimTime::from_secs(90)),
            Some(vod_sim::SimDuration::from_secs(30))
        );
        e.set_total_bandwidth(Mbps::new(18.0));
        assert_eq!(e.total_bandwidth(), Mbps::new(18.0));
    }
}
