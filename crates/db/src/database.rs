//! The in-memory database store.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use vod_net::{LinkId, NodeId, Topology};
use vod_storage::video::VideoLibrary;

use crate::access::{AdminCredential, FullAccess, LimitedAccess};
use crate::entry::{LinkEntry, ServerConfig, ServerEntry};
use crate::error::DbError;

/// The service database: one entry per server and per link, the
/// service-wide video library, and the set of registered administrators.
///
/// Reads and writes go through the typed views returned by
/// [`Database::full_access`] and [`Database::limited_access`]; see the
/// [crate-level example](crate).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Database {
    servers: BTreeMap<NodeId, ServerEntry>,
    links: BTreeMap<LinkId, LinkEntry>,
    library: VideoLibrary,
    admins: BTreeSet<String>,
    /// Monotonic counter bumped on every traffic write (SNMP reading),
    /// letting consumers cache snapshots derived from the link entries.
    /// Bookkeeping only: not persisted, ignored by equality.
    #[serde(skip)]
    traffic_version: u64,
}

// Two databases are equal iff their *data* is; the traffic-version
// counter is cache bookkeeping (a deserialized copy restarts at 0 yet
// must compare equal to its source).
impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        self.servers == other.servers
            && self.links == other.links
            && self.library == other.library
            && self.admins == other.admins
    }
}

impl Database {
    /// Creates an empty database with one registered administrator,
    /// `"root"`.
    pub fn new(library: VideoLibrary) -> Self {
        let mut admins = BTreeSet::new();
        admins.insert("root".to_string());
        Database {
            servers: BTreeMap::new(),
            links: BTreeMap::new(),
            library,
            admins,
            traffic_version: 0,
        }
    }

    /// Initializes the database from a topology: every video-server node
    /// gets a [`ServerEntry`] with the default configuration, every link a
    /// [`LinkEntry`] carrying its capacity — the paper's service
    /// initialization, where participants contribute their links'
    /// bandwidth and title lists.
    pub fn from_topology(topology: &Topology, library: VideoLibrary) -> Self {
        let mut db = Database::new(library);
        for node in topology.nodes() {
            if node.is_video_server() {
                db.servers.insert(
                    node.id(),
                    ServerEntry::new(node.id(), ServerConfig::default()),
                );
            }
        }
        for link in topology.links() {
            db.links
                .insert(link.id(), LinkEntry::new(link.id(), link.capacity()));
        }
        db
    }

    /// Registers a new administrator name.
    pub fn register_admin(&mut self, name: impl Into<String>) {
        self.admins.insert(name.into());
    }

    /// The user-facing, read-only view of the full-access sub-module.
    pub fn full_access(&self) -> FullAccess<'_> {
        FullAccess::new(self)
    }

    /// The administrator view of the limited-access sub-module.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::AccessDenied`] if `credential` is not a
    /// registered administrator.
    pub fn limited_access(
        &mut self,
        credential: &AdminCredential,
    ) -> Result<LimitedAccess<'_>, DbError> {
        if self.admins.contains(credential.name()) {
            Ok(LimitedAccess::new(self))
        } else {
            Err(DbError::AccessDenied)
        }
    }

    /// The service-wide video library.
    pub fn library(&self) -> &VideoLibrary {
        &self.library
    }

    /// Number of server entries.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of link entries.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Monotonic version of the stored traffic state, bumped whenever an
    /// SNMP reading is recorded. Snapshots derived from this database
    /// stay valid exactly as long as the version does not change, so
    /// callers can reuse one snapshot instance across requests — which
    /// keeps epoch-keyed routing caches (see `vod_net::engine`) warm.
    pub fn traffic_version(&self) -> u64 {
        self.traffic_version
    }

    pub(crate) fn bump_traffic_version(&mut self) {
        self.traffic_version += 1;
    }

    // Crate-internal accessors used by the views.

    pub(crate) fn server(&self, node: NodeId) -> Result<&ServerEntry, DbError> {
        self.servers.get(&node).ok_or(DbError::UnknownServer(node))
    }

    pub(crate) fn server_mut(&mut self, node: NodeId) -> Result<&mut ServerEntry, DbError> {
        self.servers
            .get_mut(&node)
            .ok_or(DbError::UnknownServer(node))
    }

    pub(crate) fn link(&self, link: LinkId) -> Result<&LinkEntry, DbError> {
        self.links.get(&link).ok_or(DbError::UnknownLink(link))
    }

    pub(crate) fn link_mut(&mut self, link: LinkId) -> Result<&mut LinkEntry, DbError> {
        self.links.get_mut(&link).ok_or(DbError::UnknownLink(link))
    }

    pub(crate) fn servers(&self) -> impl Iterator<Item = &ServerEntry> {
        self.servers.values()
    }

    pub(crate) fn links(&self) -> impl Iterator<Item = &LinkEntry> {
        self.links.values()
    }

    pub(crate) fn insert_server(&mut self, entry: ServerEntry) -> Result<(), DbError> {
        if self.servers.contains_key(&entry.node()) {
            return Err(DbError::ServerExists(entry.node()));
        }
        self.servers.insert(entry.node(), entry);
        Ok(())
    }

    pub(crate) fn insert_link(&mut self, entry: LinkEntry) -> Result<(), DbError> {
        if self.links.contains_key(&entry.link()) {
            return Err(DbError::LinkExists(entry.link()));
        }
        self.links.insert(entry.link(), entry);
        Ok(())
    }

    pub(crate) fn library_mut(&mut self) -> &mut VideoLibrary {
        &mut self.library
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_net::topologies::grnet::Grnet;
    use vod_storage::video::{Megabytes, VideoId, VideoMeta};

    fn library(n: u32) -> VideoLibrary {
        (0..n)
            .map(|i| VideoMeta::new(VideoId::new(i), format!("t{i}"), Megabytes::new(100.0), 1.5))
            .collect()
    }

    #[test]
    fn from_topology_registers_everything() {
        let grnet = Grnet::new();
        let db = Database::from_topology(grnet.topology(), library(3));
        assert_eq!(db.server_count(), 6);
        assert_eq!(db.link_count(), 7);
        assert_eq!(db.library().len(), 3);
    }

    #[test]
    fn transit_nodes_get_no_server_entry() {
        use vod_net::node::NodeKind;
        use vod_net::{Mbps, TopologyBuilder};
        let mut b = TopologyBuilder::new();
        let s = b.add_node("server");
        let t = b.add_node_with_kind("router", NodeKind::Transit);
        b.add_link(s, t, Mbps::new(2.0)).unwrap();
        let db = Database::from_topology(&b.build(), VideoLibrary::new());
        assert_eq!(db.server_count(), 1);
        assert_eq!(db.link_count(), 1);
    }

    #[test]
    fn root_admin_is_preregistered() {
        let grnet = Grnet::new();
        let mut db = Database::from_topology(grnet.topology(), VideoLibrary::new());
        assert!(db.limited_access(&AdminCredential::new("root")).is_ok());
        assert_eq!(
            db.limited_access(&AdminCredential::new("mallory")).err(),
            Some(DbError::AccessDenied)
        );
        db.register_admin("alice");
        assert!(db.limited_access(&AdminCredential::new("alice")).is_ok());
    }

    #[test]
    fn database_serde_round_trip_preserves_everything() {
        // The service's state survives restarts: serialize the whole
        // database (entries, catalog, admins) and read it back.
        let grnet = Grnet::new();
        let mut db = Database::from_topology(grnet.topology(), library(2));
        db.register_admin("alice");
        db.limited_access(&AdminCredential::new("alice"))
            .unwrap()
            .add_title(grnet.topology().video_server_nodes()[1], VideoId::new(1))
            .unwrap();
        let json = serde_json::to_string(&db).unwrap();
        let restored: Database = serde_json::from_str(&json).unwrap();
        assert_eq!(db, restored);
        // Restored database still honours access control.
        let mut restored = restored;
        assert!(restored
            .limited_access(&AdminCredential::new("alice"))
            .is_ok());
        assert!(restored
            .limited_access(&AdminCredential::new("mallory"))
            .is_err());
    }

    #[test]
    fn unknown_lookups_error() {
        let db = Database::new(VideoLibrary::new());
        assert_eq!(
            db.server(NodeId::new(0)).err(),
            Some(DbError::UnknownServer(NodeId::new(0)))
        );
        assert_eq!(
            db.link(LinkId::new(0)).err(),
            Some(DbError::UnknownLink(LinkId::new(0)))
        );
    }
}
