//! Typed access levels over the database.
//!
//! The paper's web module has "a full access module, with which the user
//! is able to find and watch the available video titles … and a limited
//! access module to which only the administrators of the service can have
//! access". [`FullAccess`] and [`LimitedAccess`] encode those levels in
//! the type system: user code holding a `FullAccess` simply has no way to
//! read link utilizations or rewrite catalogs.

use vod_net::units::Fraction;
use vod_net::{LinkId, Mbps, NodeId, Topology, TrafficSnapshot};
use vod_sim::{SimDuration, SimTime};
use vod_storage::video::{VideoId, VideoMeta};

use crate::database::Database;
use crate::entry::{LinkEntry, ServerConfig, ServerEntry, UtilizationReading};
use crate::error::DbError;

/// An administrator identity presented to
/// [`Database::limited_access`](crate::Database::limited_access).
///
/// This stands in for the paper's password-protected admin web module; in
/// a simulation there is nothing to authenticate against, so a credential
/// is just a name checked against the registered-admin set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AdminCredential {
    name: String,
}

impl AdminCredential {
    /// Creates a credential for `name`.
    pub fn new(name: impl Into<String>) -> Self {
        AdminCredential { name: name.into() }
    }

    /// The administrator name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The user view: full-access sub-module only (catalog queries).
#[derive(Debug, Clone, Copy)]
pub struct FullAccess<'a> {
    db: &'a Database,
}

impl<'a> FullAccess<'a> {
    pub(crate) fn new(db: &'a Database) -> Self {
        FullAccess { db }
    }

    /// All titles in the service-wide catalog, in id order.
    pub fn titles(&self) -> impl Iterator<Item = &'a VideoMeta> {
        self.db.library().iter()
    }

    /// Looks up a title's metadata.
    pub fn video(&self, id: VideoId) -> Option<&'a VideoMeta> {
        self.db.library().get(id)
    }

    /// Searches for a title by exact name — the web module's "search for
    /// a certain video title".
    pub fn find_title(&self, title: &str) -> Option<&'a VideoMeta> {
        self.db.library().find_by_title(title)
    }

    /// The servers currently listing `video`, in node order.
    pub fn servers_with_title(&self, video: VideoId) -> Vec<NodeId> {
        self.db
            .servers()
            .filter(|s| s.has_title(video))
            .map(ServerEntry::node)
            .collect()
    }

    /// The titles available on `server`.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownServer`] for an unregistered node.
    pub fn titles_at(&self, server: NodeId) -> Result<Vec<VideoId>, DbError> {
        Ok(self.db.server(server)?.titles().collect())
    }
}

/// The administrator view: limited-access sub-module (network state and
/// configuration), plus all writes.
#[derive(Debug)]
pub struct LimitedAccess<'a> {
    db: &'a mut Database,
}

impl<'a> LimitedAccess<'a> {
    pub(crate) fn new(db: &'a mut Database) -> Self {
        LimitedAccess { db }
    }

    // ---- reads -----------------------------------------------------

    /// One server's entry.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownServer`] for an unregistered node.
    pub fn server(&self, node: NodeId) -> Result<&ServerEntry, DbError> {
        self.db.server(node)
    }

    /// One link's entry.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownLink`] for an unregistered link.
    pub fn link(&self, link: LinkId) -> Result<&LinkEntry, DbError> {
        self.db.link(link)
    }

    /// Age of the newest SNMP reading of `link` at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownLink`] for an unregistered link.
    pub fn reading_age(&self, link: LinkId, now: SimTime) -> Result<Option<SimDuration>, DbError> {
        Ok(self.db.link(link)?.reading_age(now))
    }

    /// Builds the traffic snapshot the Virtual Routing Algorithm consumes:
    /// the latest SNMP reading of every link (zero traffic for links never
    /// polled). This is deliberately the *database's* view — between polls
    /// it lags the true network state, exactly as in the paper.
    pub fn snapshot(&self, topology: &Topology) -> TrafficSnapshot {
        let mut snap = TrafficSnapshot::zero(topology);
        for entry in self.db.links() {
            if entry.link().index() >= topology.link_count() {
                continue;
            }
            if let Some(reading) = entry.last_reading() {
                snap.set_used(entry.link(), reading.used);
                snap.set_explicit_utilization(entry.link(), reading.utilization);
            }
        }
        snap
    }

    /// Like [`LimitedAccess::snapshot`], but each link's traffic is the
    /// exponentially-weighted moving average of its reading history
    /// rather than the latest reading — a staleness-smoothing variant
    /// used by the E2/E9 ablations. The latest reading's explicit
    /// utilization is replaced by the smoothed `used / capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not within `(0, 1]`.
    pub fn smoothed_snapshot(&self, topology: &Topology, alpha: f64) -> TrafficSnapshot {
        let mut snap = TrafficSnapshot::zero(topology);
        for entry in self.db.links() {
            if entry.link().index() >= topology.link_count() {
                continue;
            }
            if let Some(used) = entry.smoothed_used(alpha) {
                snap.set_used(entry.link(), used);
            }
        }
        snap
    }

    // ---- writes ----------------------------------------------------

    /// Registers a new server entry (a node joining the service).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::ServerExists`] if the node already has an entry.
    pub fn register_server(&mut self, node: NodeId, config: ServerConfig) -> Result<(), DbError> {
        self.db.insert_server(ServerEntry::new(node, config))
    }

    /// Registers a new link entry.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::LinkExists`] if the link already has an entry.
    pub fn register_link(&mut self, link: LinkId, total_bandwidth: Mbps) -> Result<(), DbError> {
        self.db.insert_link(LinkEntry::new(link, total_bandwidth))
    }

    /// Adds a title to the service-wide library (new content ingested).
    pub fn add_video(&mut self, meta: VideoMeta) {
        self.db.library_mut().insert(meta);
    }

    /// Marks `video` as available on `server` (the DMA cached it).
    /// Returns `false` if it was already listed.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownServer`] or [`DbError::UnknownVideo`].
    pub fn add_title(&mut self, server: NodeId, video: VideoId) -> Result<bool, DbError> {
        if self.db.library().get(video).is_none() {
            return Err(DbError::UnknownVideo(video));
        }
        Ok(self.db.server_mut(server)?.add_title(video))
    }

    /// Removes `video` from `server`'s catalog (the DMA evicted it).
    /// Returns `false` if it was not listed.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownServer`] for an unregistered node.
    pub fn remove_title(&mut self, server: NodeId, video: VideoId) -> Result<bool, DbError> {
        Ok(self.db.server_mut(server)?.remove_title(video))
    }

    /// Records an SNMP utilization reading for `link` — what the
    /// statistics module does every 1–2 minutes.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownLink`] for an unregistered link.
    pub fn record_reading(
        &mut self,
        link: LinkId,
        at: SimTime,
        used: Mbps,
        utilization: Fraction,
    ) -> Result<(), DbError> {
        self.db.link_mut(link)?.record(UtilizationReading {
            at,
            used,
            utilization,
        });
        self.db.bump_traffic_version();
        Ok(())
    }

    /// Updates a server's configuration (an administrator reporting a
    /// configuration change).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownServer`] for an unregistered node.
    pub fn set_server_config(&mut self, node: NodeId, config: ServerConfig) -> Result<(), DbError> {
        self.db.server_mut(node)?.set_config(config);
        Ok(())
    }

    /// Updates a link's administrator-entered total bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownLink`] for an unregistered link.
    pub fn set_link_bandwidth(&mut self, link: LinkId, bw: Mbps) -> Result<(), DbError> {
        self.db.link_mut(link)?.set_total_bandwidth(bw);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_net::topologies::grnet::{Grnet, GrnetLink, GrnetNode};
    use vod_storage::video::{Megabytes, VideoLibrary};

    fn setup() -> (Grnet, Database) {
        let grnet = Grnet::new();
        let mut library = VideoLibrary::new();
        for i in 0..3u32 {
            library.insert(VideoMeta::new(
                VideoId::new(i),
                format!("t{i}"),
                Megabytes::new(100.0),
                1.5,
            ));
        }
        let db = Database::from_topology(grnet.topology(), library);
        (grnet, db)
    }

    #[test]
    fn catalog_queries_via_full_access() {
        let (grnet, mut db) = setup();
        let admin = AdminCredential::new("root");
        let patra = grnet.node(GrnetNode::Patra);
        let athens = grnet.node(GrnetNode::Athens);
        {
            let mut la = db.limited_access(&admin).unwrap();
            la.add_title(patra, VideoId::new(0)).unwrap();
            la.add_title(athens, VideoId::new(0)).unwrap();
            la.add_title(patra, VideoId::new(1)).unwrap();
        }
        let fa = db.full_access();
        assert_eq!(
            fa.servers_with_title(VideoId::new(0)),
            vec![athens, patra] // node order: Athens is U1
        );
        assert_eq!(fa.titles_at(patra).unwrap().len(), 2);
        assert_eq!(fa.find_title("t1").unwrap().id(), VideoId::new(1));
        assert_eq!(fa.video(VideoId::new(2)).unwrap().title(), "t2");
        assert_eq!(fa.titles().count(), 3);
    }

    #[test]
    fn add_title_validates_video_and_server() {
        let (grnet, mut db) = setup();
        let mut la = db.limited_access(&AdminCredential::new("root")).unwrap();
        assert_eq!(
            la.add_title(grnet.node(GrnetNode::Patra), VideoId::new(99)),
            Err(DbError::UnknownVideo(VideoId::new(99)))
        );
        assert!(matches!(
            la.add_title(NodeId::new(77), VideoId::new(0)),
            Err(DbError::UnknownServer(_))
        ));
        // Adding twice reports false the second time.
        assert!(la
            .add_title(grnet.node(GrnetNode::Patra), VideoId::new(0))
            .unwrap());
        assert!(!la
            .add_title(grnet.node(GrnetNode::Patra), VideoId::new(0))
            .unwrap());
    }

    #[test]
    fn remove_title_round_trip() {
        let (grnet, mut db) = setup();
        let patra = grnet.node(GrnetNode::Patra);
        let mut la = db.limited_access(&AdminCredential::new("root")).unwrap();
        la.add_title(patra, VideoId::new(0)).unwrap();
        assert!(la.remove_title(patra, VideoId::new(0)).unwrap());
        assert!(!la.remove_title(patra, VideoId::new(0)).unwrap());
        assert!(db
            .full_access()
            .servers_with_title(VideoId::new(0))
            .is_empty());
    }

    #[test]
    fn snapshot_reflects_latest_readings_only() {
        let (grnet, mut db) = setup();
        let link = grnet.link(GrnetLink::PatraAthens);
        let mut la = db.limited_access(&AdminCredential::new("root")).unwrap();
        la.record_reading(
            link,
            SimTime::from_secs(60),
            Mbps::new(0.2),
            Fraction::from_percent(10.0),
        )
        .unwrap();
        la.record_reading(
            link,
            SimTime::from_secs(120),
            Mbps::new(1.82),
            Fraction::from_percent(91.0),
        )
        .unwrap();
        let snap = la.snapshot(grnet.topology());
        assert_eq!(snap.used(link), Mbps::new(1.82));
        assert!((snap.utilization(grnet.topology(), link).get() - 0.91).abs() < 1e-12);
        // Unpolled links read as idle.
        let other = grnet.link(GrnetLink::XanthiHeraklio);
        assert_eq!(snap.used(other), Mbps::ZERO);
        assert_eq!(
            la.reading_age(link, SimTime::from_secs(180)).unwrap(),
            Some(SimDuration::from_secs(60))
        );
        assert_eq!(
            la.reading_age(other, SimTime::from_secs(180)).unwrap(),
            None
        );
    }

    #[test]
    fn smoothed_snapshot_averages_history() {
        let (grnet, mut db) = setup();
        let link = grnet.link(GrnetLink::PatraAthens);
        let mut la = db.limited_access(&AdminCredential::new("root")).unwrap();
        for (i, mb) in [0.0, 2.0, 0.0, 2.0].iter().enumerate() {
            la.record_reading(
                link,
                SimTime::from_secs(i as u64 * 120),
                Mbps::new(*mb),
                Fraction::new(mb / 2.0),
            )
            .unwrap();
        }
        let latest = la.snapshot(grnet.topology());
        let smoothed = la.smoothed_snapshot(grnet.topology(), 0.5);
        assert_eq!(latest.used(link), Mbps::new(2.0));
        // EWMA(0.5) over 0,2,0,2 = 1.25.
        assert!((smoothed.used(link).as_f64() - 1.25).abs() < 1e-12);
        // Unpolled links are idle in both views.
        let other = grnet.link(GrnetLink::XanthiHeraklio);
        assert_eq!(smoothed.used(other), Mbps::ZERO);
    }

    #[test]
    fn registration_and_config_updates() {
        let (grnet, mut db) = setup();
        let mut la = db.limited_access(&AdminCredential::new("root")).unwrap();
        // Registering an existing server/link fails.
        assert!(matches!(
            la.register_server(grnet.node(GrnetNode::Patra), ServerConfig::default()),
            Err(DbError::ServerExists(_))
        ));
        assert!(matches!(
            la.register_link(grnet.link(GrnetLink::PatraAthens), Mbps::new(2.0)),
            Err(DbError::LinkExists(_))
        ));
        // New entries succeed.
        la.register_server(NodeId::new(42), ServerConfig::default())
            .unwrap();
        la.register_link(LinkId::new(42), Mbps::new(34.0)).unwrap();
        // Config and bandwidth updates.
        la.set_server_config(
            NodeId::new(42),
            ServerConfig {
                disk_count: 16,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(la.server(NodeId::new(42)).unwrap().config().disk_count, 16);
        la.set_link_bandwidth(LinkId::new(42), Mbps::new(155.0))
            .unwrap();
        assert_eq!(
            la.link(LinkId::new(42)).unwrap().total_bandwidth(),
            Mbps::new(155.0)
        );
    }

    #[test]
    fn add_video_extends_library() {
        let (_, mut db) = setup();
        let mut la = db.limited_access(&AdminCredential::new("root")).unwrap();
        la.add_video(VideoMeta::new(
            VideoId::new(10),
            "new",
            Megabytes::new(50.0),
            1.5,
        ));
        assert_eq!(db.library().len(), 4);
    }
}
