//! The VoD service's database module.
//!
//! The paper's service keeps all of its state in a single conceptual
//! database with two access levels:
//!
//! * the **full-access sub-module**, readable by any user through the web
//!   module: which video titles are available on which server;
//! * the **limited-access sub-module**, readable only by the service's
//!   administrators and by the application running the Virtual Routing
//!   Algorithm: per-link bandwidth and the latest SNMP utilization
//!   readings, plus per-server configuration.
//!
//! This crate models the database as an in-memory store ([`Database`])
//! with typed views enforcing the two access levels at compile time:
//! [`FullAccess`] can only see the catalog, [`LimitedAccess`] (obtained
//! from an [`AdminCredential`]) additionally sees network state and may
//! write updates. A [`SharedDatabase`] wraps the store in a mutex for the
//! simulation components that update it concurrently with lookups.
//!
//! # Example
//!
//! ```
//! use vod_db::{AdminCredential, Database};
//! use vod_net::topologies::grnet::{Grnet, GrnetNode};
//! use vod_storage::video::{Megabytes, VideoId, VideoLibrary, VideoMeta};
//!
//! # fn main() -> Result<(), vod_db::DbError> {
//! let grnet = Grnet::new();
//! let mut library = VideoLibrary::new();
//! let id = VideoId::new(0);
//! library.insert(VideoMeta::new(id, "Zorba", Megabytes::new(700.0), 1.5));
//!
//! let mut db = Database::from_topology(grnet.topology(), library);
//! let admin = AdminCredential::new("root");
//! let patra = grnet.node(GrnetNode::Patra);
//! db.limited_access(&admin)?.add_title(patra, id)?;
//!
//! // Any user can ask who has the title…
//! assert_eq!(db.full_access().servers_with_title(id), vec![patra]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod access;
pub mod database;
pub mod entry;
pub mod error;
pub mod shared;

pub use access::{AdminCredential, FullAccess, LimitedAccess};
pub use database::Database;
pub use entry::{LinkEntry, ServerConfig, ServerEntry, UtilizationReading};
pub use error::DbError;
pub use shared::SharedDatabase;
