//! A shared, lockable handle to the database.
//!
//! The paper's database is updated concurrently: the SNMP module on every
//! server inserts readings while the routing application reads them.
//! [`SharedDatabase`] provides that shape — a cheaply clonable handle
//! guarded by a mutex — even though the discrete-event simulation itself
//! is single-threaded (components hold handles rather than `&mut`
//! references to one owner).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::database::Database;

/// A cheaply clonable, mutex-guarded handle to a [`Database`].
///
/// # Examples
///
/// ```
/// use vod_db::{Database, SharedDatabase};
/// use vod_storage::video::VideoLibrary;
///
/// let shared = SharedDatabase::new(Database::new(VideoLibrary::new()));
/// let clone = shared.clone();
/// let titles = clone.with(|db| db.full_access().titles().count());
/// assert_eq!(titles, 0);
/// ```
#[derive(Debug, Clone)]
pub struct SharedDatabase {
    inner: Arc<Mutex<Database>>,
}

impl SharedDatabase {
    /// Wraps a database.
    pub fn new(db: Database) -> Self {
        SharedDatabase {
            inner: Arc::new(Mutex::new(db)),
        }
    }

    /// Runs `f` with exclusive access to the database.
    pub fn with<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Number of strong handles to this database (for diagnostics).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AdminCredential;
    use vod_net::topologies::grnet::Grnet;
    use vod_storage::video::{Megabytes, VideoId, VideoLibrary, VideoMeta};

    #[test]
    fn clones_share_state() {
        let grnet = Grnet::new();
        let mut lib = VideoLibrary::new();
        lib.insert(VideoMeta::new(
            VideoId::new(0),
            "t",
            Megabytes::new(1.0),
            1.0,
        ));
        let shared = SharedDatabase::new(Database::from_topology(grnet.topology(), lib));
        let writer = shared.clone();
        let node = grnet.topology().video_server_nodes()[0];
        writer.with(|db| {
            db.limited_access(&AdminCredential::new("root"))
                .unwrap()
                .add_title(node, VideoId::new(0))
                .unwrap();
        });
        let seen = shared.with(|db| db.full_access().servers_with_title(VideoId::new(0)));
        assert_eq!(seen, vec![node]);
        assert_eq!(shared.handle_count(), 2);
    }

    #[test]
    fn is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedDatabase>();
    }
}
