//! Per-link traffic snapshots.
//!
//! A [`TrafficSnapshot`] captures, for every link of a topology, the
//! combined in+out traffic volume at one instant — exactly what the paper's
//! SNMP statistics module writes into the limited-access database every
//! 1–2 minutes.

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::ids::LinkId;
use crate::topology::Topology;
use crate::units::{Fraction, Mbps};

/// Traffic state of every link of a topology at one instant.
///
/// For each link the snapshot stores the *used bandwidth* (UBW, the
/// combined `traffic_in + traffic_out` of the paper's equation (5)). The
/// utilization fraction is normally derived as `used / capacity`, but an
/// explicit utilization can be recorded per link: the paper's Table 2
/// reports rounded percentages (e.g. 9.4% for 1 700 kb on an 18 Mb link)
/// and its Table 3 LVN values were computed from those rounded figures, so
/// faithful reproduction requires carrying both.
///
/// # Examples
///
/// ```
/// use vod_net::{Mbps, TopologyBuilder, TrafficSnapshot};
///
/// # fn main() -> Result<(), vod_net::NetError> {
/// let mut b = TopologyBuilder::new();
/// let a = b.add_node("a");
/// let c = b.add_node("b");
/// let l = b.add_link(a, c, Mbps::new(18.0))?;
/// let topo = b.build();
///
/// let mut snap = TrafficSnapshot::zero(&topo);
/// snap.set_used(l, Mbps::new(1.7));
/// assert!((snap.utilization(&topo, l).get() - 1.7 / 18.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSnapshot {
    used: Vec<Mbps>,
    explicit_utilization: Vec<Option<Fraction>>,
}

impl TrafficSnapshot {
    /// Creates a snapshot with zero traffic on every link of `topology`.
    pub fn zero(topology: &Topology) -> Self {
        TrafficSnapshot {
            used: vec![Mbps::ZERO; topology.link_count()],
            explicit_utilization: vec![None; topology.link_count()],
        }
    }

    /// Number of links covered by this snapshot.
    pub fn link_count(&self) -> usize {
        self.used.len()
    }

    /// Sets the combined in+out traffic on `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range for the topology this snapshot was
    /// created from.
    pub fn set_used(&mut self, link: LinkId, used: Mbps) {
        self.used[link.index()] = used;
    }

    /// Adds traffic on `link` (e.g. when a new flow is admitted).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn add_used(&mut self, link: LinkId, delta: Mbps) {
        self.used[link.index()] += delta;
    }

    /// Removes traffic from `link`, clamping at zero.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn remove_used(&mut self, link: LinkId, delta: Mbps) {
        self.used[link.index()] = self.used[link.index()].saturating_sub(delta);
    }

    /// Records an explicit utilization reading for `link`, overriding the
    /// derived `used / capacity` value (used to reproduce the paper's
    /// rounded Table 2 percentages).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn set_explicit_utilization(&mut self, link: LinkId, utilization: Fraction) {
        self.explicit_utilization[link.index()] = Some(utilization);
    }

    /// Clears an explicit utilization reading, reverting to the derived
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn clear_explicit_utilization(&mut self, link: LinkId) {
        self.explicit_utilization[link.index()] = None;
    }

    /// Returns the combined in+out traffic currently recorded on `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn used(&self, link: LinkId) -> Mbps {
        self.used[link.index()]
    }

    /// Returns the utilization fraction of `link`: the explicit reading if
    /// one was recorded, otherwise `used / capacity` (equation (5) of the
    /// paper).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range of `topology`, or if this snapshot
    /// was built for a different topology.
    pub fn utilization(&self, topology: &Topology, link: LinkId) -> Fraction {
        if let Some(explicit) = self.explicit_utilization[link.index()] {
            return explicit;
        }
        let cap = topology.link(link).capacity();
        if cap.is_zero() {
            Fraction::ZERO
        } else {
            Fraction::new(self.used(link) / cap)
        }
    }

    /// Validates that this snapshot matches `topology`'s link count.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::WeightCountMismatch`] when sizes differ.
    pub fn check_matches(&self, topology: &Topology) -> Result<(), NetError> {
        if self.used.len() == topology.link_count() {
            Ok(())
        } else {
            Err(NetError::WeightCountMismatch {
                expected: topology.link_count(),
                actual: self.used.len(),
            })
        }
    }

    /// The most-utilized link and its utilization, or `None` for an empty
    /// topology.
    pub fn max_utilization(&self, topology: &Topology) -> Option<(LinkId, Fraction)> {
        topology
            .link_ids()
            .map(|l| (l, self.utilization(topology, l)))
            .max_by(|a, b| a.1.get().total_cmp(&b.1.get()))
    }

    /// Mean utilization over all links (zero for an empty topology).
    pub fn mean_utilization(&self, topology: &Topology) -> Fraction {
        if topology.link_count() == 0 {
            return Fraction::ZERO;
        }
        let sum: f64 = topology
            .link_ids()
            .map(|l| self.utilization(topology, l).get())
            .sum();
        Fraction::new(sum / topology.link_count() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn two_link_topo() -> (Topology, LinkId, LinkId) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        let d = b.add_node("c");
        let l0 = b.add_link(a, c, Mbps::new(2.0)).unwrap();
        let l1 = b.add_link(c, d, Mbps::new(18.0)).unwrap();
        (b.build(), l0, l1)
    }

    #[test]
    fn zero_snapshot_has_zero_utilization() {
        let (topo, l0, l1) = two_link_topo();
        let snap = TrafficSnapshot::zero(&topo);
        assert_eq!(snap.used(l0), Mbps::ZERO);
        assert_eq!(snap.utilization(&topo, l1).get(), 0.0);
        assert_eq!(snap.link_count(), 2);
    }

    #[test]
    fn derived_utilization_is_used_over_capacity() {
        let (topo, l0, _) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        snap.set_used(l0, Mbps::new(0.2));
        assert!((snap.utilization(&topo, l0).get() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn explicit_utilization_overrides_derived() {
        let (topo, l0, _) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        snap.set_used(l0, Mbps::new(0.2));
        snap.set_explicit_utilization(l0, Fraction::from_percent(9.4));
        assert!((snap.utilization(&topo, l0).get() - 0.094).abs() < 1e-12);
        snap.clear_explicit_utilization(l0);
        assert!((snap.utilization(&topo, l0).get() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn add_and_remove_traffic() {
        let (topo, l0, _) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        snap.add_used(l0, Mbps::new(1.0));
        snap.add_used(l0, Mbps::new(0.5));
        assert_eq!(snap.used(l0), Mbps::new(1.5));
        snap.remove_used(l0, Mbps::new(2.0));
        assert_eq!(snap.used(l0), Mbps::ZERO);
    }

    #[test]
    fn max_and_mean_utilization() {
        let (topo, l0, l1) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        snap.set_used(l0, Mbps::new(1.0)); // 50%
        snap.set_used(l1, Mbps::new(1.8)); // 10%
        let (link, frac) = snap.max_utilization(&topo).unwrap();
        assert_eq!(link, l0);
        assert!((frac.get() - 0.5).abs() < 1e-12);
        assert!((snap.mean_utilization(&topo).get() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn check_matches_detects_size_mismatch() {
        let (topo, ..) = two_link_topo();
        let snap = TrafficSnapshot::zero(&topo);
        assert!(snap.check_matches(&topo).is_ok());

        let mut b = TopologyBuilder::new();
        b.add_node("solo");
        let other = b.build();
        assert!(snap.check_matches(&other).is_err());
    }
}
