//! Per-link traffic snapshots.
//!
//! A [`TrafficSnapshot`] captures, for every link of a topology, the
//! combined in+out traffic volume at one instant — exactly what the paper's
//! SNMP statistics module writes into the limited-access database every
//! 1–2 minutes.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::ids::LinkId;
use crate::topology::Topology;
use crate::units::{Fraction, Mbps};

/// Capacity of the per-snapshot mutation journal. Consumers that fall
/// more than this many mutations behind get `None` from
/// [`TrafficSnapshot::dirty_links_since`] and must rebuild fully.
const JOURNAL_CAPACITY: usize = 512;

/// Process-wide counter handing each snapshot instance a unique token.
static NEXT_SNAPSHOT_TOKEN: AtomicU64 = AtomicU64::new(1);

fn fresh_token() -> u64 {
    NEXT_SNAPSHOT_TOKEN.fetch_add(1, Ordering::Relaxed)
}

/// Identity + mutation count of a [`TrafficSnapshot`] at one instant.
///
/// The `token` is unique per snapshot *instance* (clones and
/// deserialized copies get fresh tokens), and `version` counts
/// mutations of that instance. Together they let a cache decide whether
/// memoized derived state (link weights, shortest-path trees) is still
/// valid: equal epoch ⇒ byte-identical traffic state.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct SnapshotEpoch {
    /// Unique id of the snapshot instance.
    pub token: u64,
    /// Number of mutations applied to that instance.
    pub version: u64,
}

/// Traffic state of every link of a topology at one instant.
///
/// For each link the snapshot stores the *used bandwidth* (UBW, the
/// combined `traffic_in + traffic_out` of the paper's equation (5)). The
/// utilization fraction is normally derived as `used / capacity`, but an
/// explicit utilization can be recorded per link: the paper's Table 2
/// reports rounded percentages (e.g. 9.4% for 1 700 kb on an 18 Mb link)
/// and its Table 3 LVN values were computed from those rounded figures, so
/// faithful reproduction requires carrying both.
///
/// # Examples
///
/// ```
/// use vod_net::{Mbps, TopologyBuilder, TrafficSnapshot};
///
/// # fn main() -> Result<(), vod_net::NetError> {
/// let mut b = TopologyBuilder::new();
/// let a = b.add_node("a");
/// let c = b.add_node("b");
/// let l = b.add_link(a, c, Mbps::new(18.0))?;
/// let topo = b.build();
///
/// let mut snap = TrafficSnapshot::zero(&topo);
/// snap.set_used(l, Mbps::new(1.7));
/// assert!((snap.utilization(&topo, l).get() - 1.7 / 18.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TrafficSnapshot {
    used: Vec<Mbps>,
    explicit_utilization: Vec<Option<Fraction>>,
    /// Administrative link state: `true` marks a link taken down by
    /// fault injection. Down links must never carry a routed flow —
    /// consumers ([`crate::lvn`], [`crate::engine`]) weight them as
    /// `f64::INFINITY`.
    admin_down: Vec<bool>,
    /// Instance identity for epoch-keyed caching (fresh on clone).
    token: u64,
    /// Mutation counter; mutation `k` (0-based) is journaled at
    /// `journal[k % JOURNAL_CAPACITY]`.
    version: u64,
    /// Ring buffer of the links touched by the most recent mutations.
    journal: Vec<LinkId>,
}

// Equality and cloning ignore the caching bookkeeping: two snapshots
// are equal iff their traffic state is, and a clone is a *new instance*
// (fresh token, version 0) so caches never confuse it with the
// original.
impl PartialEq for TrafficSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.used == other.used
            && self.explicit_utilization == other.explicit_utilization
            && self.admin_down == other.admin_down
    }
}

impl Clone for TrafficSnapshot {
    fn clone(&self) -> Self {
        TrafficSnapshot {
            used: self.used.clone(),
            explicit_utilization: self.explicit_utilization.clone(),
            admin_down: self.admin_down.clone(),
            token: fresh_token(),
            version: 0,
            journal: Vec::new(),
        }
    }
}

impl Serialize for TrafficSnapshot {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("used".to_string(), self.used.to_value()),
            (
                "explicit_utilization".to_string(),
                self.explicit_utilization.to_value(),
            ),
            ("admin_down".to_string(), self.admin_down.to_value()),
        ])
    }
}

impl Deserialize for TrafficSnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let used: Vec<Mbps> = match v.get_field("used") {
            Some(f) => Deserialize::from_value(f)?,
            None => {
                return Err(serde::Error::custom(
                    "missing field `used` of `TrafficSnapshot`",
                ))
            }
        };
        let explicit_utilization: Vec<Option<Fraction>> = match v.get_field("explicit_utilization")
        {
            Some(f) => Deserialize::from_value(f)?,
            None => {
                return Err(serde::Error::custom(
                    "missing field `explicit_utilization` of `TrafficSnapshot`",
                ))
            }
        };
        // Older traces predate administrative link state; default to all-up.
        let admin_down: Vec<bool> = match v.get_field("admin_down") {
            Some(f) => Deserialize::from_value(f)?,
            None => vec![false; used.len()],
        };
        if used.len() != explicit_utilization.len() || used.len() != admin_down.len() {
            return Err(serde::Error::custom(
                "TrafficSnapshot field lengths disagree",
            ));
        }
        Ok(TrafficSnapshot {
            used,
            explicit_utilization,
            admin_down,
            token: fresh_token(),
            version: 0,
            journal: Vec::new(),
        })
    }
}

impl TrafficSnapshot {
    /// Creates a snapshot with zero traffic on every link of `topology`.
    pub fn zero(topology: &Topology) -> Self {
        TrafficSnapshot {
            used: vec![Mbps::ZERO; topology.link_count()],
            explicit_utilization: vec![None; topology.link_count()],
            admin_down: vec![false; topology.link_count()],
            token: fresh_token(),
            version: 0,
            journal: Vec::new(),
        }
    }

    /// The snapshot's current epoch (instance token + mutation count).
    pub fn epoch(&self) -> SnapshotEpoch {
        SnapshotEpoch {
            token: self.token,
            version: self.version,
        }
    }

    /// Links mutated between `since` and the current epoch, oldest
    /// first, or `None` when the journal window was exceeded (or
    /// `since` belongs to a different instance) and the caller must
    /// rebuild from scratch. The same link may appear multiple times.
    pub fn dirty_links_since(
        &self,
        since: SnapshotEpoch,
    ) -> Option<impl Iterator<Item = LinkId> + '_> {
        if since.token != self.token || since.version > self.version {
            return None;
        }
        let behind = self.version - since.version;
        if behind as usize > JOURNAL_CAPACITY {
            return None;
        }
        Some(
            (since.version..self.version)
                .map(|k| self.journal[(k % JOURNAL_CAPACITY as u64) as usize]),
        )
    }

    /// Collects the deduplicated, sorted dirty-link set since `since`
    /// into `out` (cleared first), reusing the caller's allocation —
    /// the journal-consumer shape of [`Self::dirty_links_since`] for
    /// callers that poll every epoch, like the routing engine's
    /// `prepare`. Returns `false` when the journal window was exceeded
    /// (or `since` belongs to a different instance) and the caller must
    /// rebuild from scratch; `out` is left empty in that case.
    pub fn collect_dirty_into(&self, since: SnapshotEpoch, out: &mut Vec<LinkId>) -> bool {
        out.clear();
        match self.dirty_links_since(since) {
            None => false,
            Some(iter) => {
                out.extend(iter);
                out.sort_unstable();
                out.dedup();
                true
            }
        }
    }

    /// Records `link` in the mutation journal and bumps the version.
    fn note_mutation(&mut self, link: LinkId) {
        let slot = (self.version % JOURNAL_CAPACITY as u64) as usize;
        if slot == self.journal.len() {
            self.journal.push(link);
        } else {
            self.journal[slot] = link;
        }
        self.version += 1;
    }

    /// Number of links covered by this snapshot.
    pub fn link_count(&self) -> usize {
        self.used.len()
    }

    /// Sets the combined in+out traffic on `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range for the topology this snapshot was
    /// created from.
    pub fn set_used(&mut self, link: LinkId, used: Mbps) {
        self.used[link.index()] = used;
        self.note_mutation(link);
    }

    /// Adds traffic on `link` (e.g. when a new flow is admitted).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn add_used(&mut self, link: LinkId, delta: Mbps) {
        self.used[link.index()] += delta;
        self.note_mutation(link);
    }

    /// Removes traffic from `link`, clamping at zero, and returns the
    /// shortfall that could not be removed ([`Mbps::ZERO`] in the
    /// normal case). A nonzero shortfall means the caller released
    /// more traffic than the snapshot recorded — a link-conservation
    /// bug upstream; debug builds assert on it, and callers should
    /// surface the returned shortfall (e.g. as an observability event)
    /// instead of silently saturating.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range; debug builds also panic on
    /// underflow.
    #[must_use = "a nonzero shortfall signals a link-conservation bug"]
    pub fn remove_used(&mut self, link: LinkId, delta: Mbps) -> Mbps {
        let before = self.used[link.index()];
        let shortfall = delta.saturating_sub(before);
        debug_assert!(
            shortfall.is_zero(),
            "remove_used underflow on {link}: removing {delta} exceeds recorded {before}"
        );
        self.used[link.index()] = before.saturating_sub(delta);
        self.note_mutation(link);
        shortfall
    }

    /// Records an explicit utilization reading for `link`, overriding the
    /// derived `used / capacity` value (used to reproduce the paper's
    /// rounded Table 2 percentages).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn set_explicit_utilization(&mut self, link: LinkId, utilization: Fraction) {
        self.explicit_utilization[link.index()] = Some(utilization);
        self.note_mutation(link);
    }

    /// Clears an explicit utilization reading, reverting to the derived
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn clear_explicit_utilization(&mut self, link: LinkId) {
        self.explicit_utilization[link.index()] = None;
        self.note_mutation(link);
    }

    /// Sets the administrative state of `link`: `true` marks it down
    /// (fault-injected outage). A no-op when the state is unchanged, so
    /// repeated applications add no journal noise.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn set_admin_down(&mut self, link: LinkId, down: bool) {
        if self.admin_down[link.index()] != down {
            self.admin_down[link.index()] = down;
            self.note_mutation(link);
        }
    }

    /// Whether `link` is administratively down.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn is_admin_down(&self, link: LinkId) -> bool {
        self.admin_down[link.index()]
    }

    /// Links currently marked administratively down, in id order.
    pub fn admin_down_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.admin_down
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| LinkId::new(i as u32))
    }

    /// Returns the combined in+out traffic currently recorded on `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn used(&self, link: LinkId) -> Mbps {
        self.used[link.index()]
    }

    /// Returns the utilization fraction of `link`: the explicit reading if
    /// one was recorded, otherwise `used / capacity` (equation (5) of the
    /// paper).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range of `topology`, or if this snapshot
    /// was built for a different topology.
    pub fn utilization(&self, topology: &Topology, link: LinkId) -> Fraction {
        if let Some(explicit) = self.explicit_utilization[link.index()] {
            return explicit;
        }
        let cap = topology.link(link).capacity();
        if cap.is_zero() {
            Fraction::ZERO
        } else {
            Fraction::new(self.used(link) / cap)
        }
    }

    /// Validates that this snapshot matches `topology`'s link count.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::WeightCountMismatch`] when sizes differ.
    pub fn check_matches(&self, topology: &Topology) -> Result<(), NetError> {
        if self.used.len() == topology.link_count() {
            Ok(())
        } else {
            Err(NetError::WeightCountMismatch {
                expected: topology.link_count(),
                actual: self.used.len(),
            })
        }
    }

    /// The most-utilized link and its utilization, or `None` for an empty
    /// topology.
    pub fn max_utilization(&self, topology: &Topology) -> Option<(LinkId, Fraction)> {
        topology
            .link_ids()
            .map(|l| (l, self.utilization(topology, l)))
            .max_by(|a, b| a.1.get().total_cmp(&b.1.get()))
    }

    /// Mean utilization over all links (zero for an empty topology).
    pub fn mean_utilization(&self, topology: &Topology) -> Fraction {
        if topology.link_count() == 0 {
            return Fraction::ZERO;
        }
        let sum: f64 = topology
            .link_ids()
            .map(|l| self.utilization(topology, l).get())
            .sum();
        Fraction::new(sum / topology.link_count() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn two_link_topo() -> (Topology, LinkId, LinkId) {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        let d = b.add_node("c");
        let l0 = b.add_link(a, c, Mbps::new(2.0)).unwrap();
        let l1 = b.add_link(c, d, Mbps::new(18.0)).unwrap();
        (b.build(), l0, l1)
    }

    #[test]
    fn zero_snapshot_has_zero_utilization() {
        let (topo, l0, l1) = two_link_topo();
        let snap = TrafficSnapshot::zero(&topo);
        assert_eq!(snap.used(l0), Mbps::ZERO);
        assert_eq!(snap.utilization(&topo, l1).get(), 0.0);
        assert_eq!(snap.link_count(), 2);
    }

    #[test]
    fn derived_utilization_is_used_over_capacity() {
        let (topo, l0, _) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        snap.set_used(l0, Mbps::new(0.2));
        assert!((snap.utilization(&topo, l0).get() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn explicit_utilization_overrides_derived() {
        let (topo, l0, _) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        snap.set_used(l0, Mbps::new(0.2));
        snap.set_explicit_utilization(l0, Fraction::from_percent(9.4));
        assert!((snap.utilization(&topo, l0).get() - 0.094).abs() < 1e-12);
        snap.clear_explicit_utilization(l0);
        assert!((snap.utilization(&topo, l0).get() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn add_and_remove_traffic() {
        let (topo, l0, _) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        snap.add_used(l0, Mbps::new(1.0));
        snap.add_used(l0, Mbps::new(0.5));
        assert_eq!(snap.used(l0), Mbps::new(1.5));
        assert_eq!(snap.remove_used(l0, Mbps::new(1.5)), Mbps::ZERO);
        assert_eq!(snap.used(l0), Mbps::ZERO);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "remove_used underflow")]
    fn remove_used_underflow_asserts_in_debug() {
        let (topo, l0, _) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        snap.add_used(l0, Mbps::new(1.0));
        let _ = snap.remove_used(l0, Mbps::new(2.0));
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn remove_used_underflow_clamps_and_reports_in_release() {
        let (topo, l0, _) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        snap.add_used(l0, Mbps::new(1.0));
        let shortfall = snap.remove_used(l0, Mbps::new(2.5));
        assert_eq!(shortfall, Mbps::new(1.5));
        assert_eq!(snap.used(l0), Mbps::ZERO);
    }

    #[test]
    fn admin_down_is_journaled_and_round_trips() {
        let (topo, l0, l1) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        assert!(!snap.is_admin_down(l0));
        let before = snap.epoch();
        snap.set_admin_down(l0, true);
        // Unchanged state adds no journal noise.
        snap.set_admin_down(l0, true);
        snap.set_admin_down(l1, false);
        assert_eq!(snap.epoch().version, before.version + 1);
        let dirty: Vec<LinkId> = snap.dirty_links_since(before).unwrap().collect();
        assert_eq!(dirty, vec![l0]);
        assert!(snap.is_admin_down(l0));
        assert_eq!(snap.admin_down_links().collect::<Vec<_>>(), vec![l0]);

        // Down state survives serde and distinguishes snapshots.
        let json = serde_json::to_string(&snap).unwrap();
        let back: TrafficSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert!(back.is_admin_down(l0));
        snap.set_admin_down(l0, false);
        assert_ne!(back, snap);
        assert_eq!(snap.admin_down_links().count(), 0);
    }

    #[test]
    fn max_and_mean_utilization() {
        let (topo, l0, l1) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        snap.set_used(l0, Mbps::new(1.0)); // 50%
        snap.set_used(l1, Mbps::new(1.8)); // 10%
        let (link, frac) = snap.max_utilization(&topo).unwrap();
        assert_eq!(link, l0);
        assert!((frac.get() - 0.5).abs() < 1e-12);
        assert!((snap.mean_utilization(&topo).get() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn epoch_advances_per_mutation() {
        let (topo, l0, l1) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        let e0 = snap.epoch();
        snap.set_used(l0, Mbps::new(1.0));
        snap.add_used(l1, Mbps::new(0.5));
        let e2 = snap.epoch();
        assert_eq!(e2.token, e0.token);
        assert_eq!(e2.version, e0.version + 2);
        let dirty: Vec<LinkId> = snap.dirty_links_since(e0).unwrap().collect();
        assert_eq!(dirty, vec![l0, l1]);
        // Caught-up consumers see an empty delta.
        assert_eq!(snap.dirty_links_since(e2).unwrap().count(), 0);
    }

    #[test]
    fn clones_and_distinct_snapshots_get_fresh_tokens() {
        let (topo, l0, _) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        snap.set_used(l0, Mbps::new(1.0));
        let clone = snap.clone();
        assert_eq!(snap, clone);
        assert_ne!(snap.epoch().token, clone.epoch().token);
        assert_eq!(clone.epoch().version, 0);
        // A foreign epoch yields no dirty delta.
        assert!(clone.dirty_links_since(snap.epoch()).is_none());
    }

    #[test]
    fn dirty_journal_overflow_forces_full_rebuild() {
        let (topo, l0, _) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        let e0 = snap.epoch();
        for _ in 0..(super::JOURNAL_CAPACITY + 1) {
            snap.add_used(l0, Mbps::new(0.001));
        }
        assert!(snap.dirty_links_since(e0).is_none());
        // But a recent epoch still has a valid window.
        let recent = snap.epoch();
        snap.set_used(l0, Mbps::new(0.5));
        let dirty: Vec<LinkId> = snap.dirty_links_since(recent).unwrap().collect();
        assert_eq!(dirty, vec![l0]);
    }

    #[test]
    fn serde_drops_cache_bookkeeping() {
        let (topo, l0, _) = two_link_topo();
        let mut snap = TrafficSnapshot::zero(&topo);
        snap.set_used(l0, Mbps::new(1.25));
        snap.set_explicit_utilization(l0, Fraction::from_percent(9.4));
        let json = serde_json::to_string(&snap).unwrap();
        let back: TrafficSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_ne!(back.epoch().token, snap.epoch().token);
        assert_eq!(back.epoch().version, 0);
    }

    #[test]
    fn check_matches_detects_size_mismatch() {
        let (topo, ..) = two_link_topo();
        let snap = TrafficSnapshot::zero(&topo);
        assert!(snap.check_matches(&topo).is_ok());

        let mut b = TopologyBuilder::new();
        b.add_node("solo");
        let other = b.build();
        assert!(snap.check_matches(&other).is_err());
    }
}
