//! Routes (paths) through the topology.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{LinkId, NodeId};
use crate::topology::Topology;

/// A simple path through the topology, with its total cost under the
/// weights it was computed from.
///
/// A `Route` always contains at least one node; a single-node route (the
/// source itself) has zero links and zero cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    nodes: Vec<NodeId>,
    links: Vec<LinkId>,
    cost: f64,
}

impl Route {
    /// Creates a route from its node sequence, link sequence and cost.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or `links.len() + 1 != nodes.len()`.
    pub fn new(nodes: Vec<NodeId>, links: Vec<LinkId>, cost: f64) -> Self {
        assert!(!nodes.is_empty(), "a route has at least one node");
        assert_eq!(
            links.len() + 1,
            nodes.len(),
            "a route over k links visits k+1 nodes"
        );
        Route { nodes, links, cost }
    }

    /// The trivial route that never leaves `node`.
    pub fn trivial(node: NodeId) -> Self {
        Route {
            nodes: vec![node],
            links: Vec::new(),
            cost: 0.0,
        }
    }

    /// First node of the route.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node of the route.
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("route is non-empty")
    }

    /// Number of links traversed.
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// Total cost of the route under the weights it was computed from.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// The node sequence, source first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The link sequence, in traversal order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Returns true if the route traverses `link`.
    pub fn contains_link(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// Returns true if the route visits `node`.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// The same route walked in the opposite direction.
    pub fn reversed(&self) -> Route {
        let mut nodes = self.nodes.clone();
        nodes.reverse();
        let mut links = self.links.clone();
        links.reverse();
        Route {
            nodes,
            links,
            cost: self.cost,
        }
    }

    /// Checks this route is well-formed in `topology`: consecutive nodes
    /// joined by the listed links.
    pub fn is_valid_in(&self, topology: &Topology) -> bool {
        self.links.iter().enumerate().all(|(i, &link)| {
            topology
                .try_link(link)
                .map(|l| {
                    l.touches(self.nodes[i]) && l.opposite(self.nodes[i]) == Some(self.nodes[i + 1])
                })
                .unwrap_or(false)
        })
    }

    /// Renders the route with node names from `topology`, in the paper's
    /// comma-separated style, e.g. `U2,U1,U6,U5`.
    pub fn display_with<'a>(&'a self, topology: &'a Topology) -> RouteDisplay<'a> {
        RouteDisplay {
            route: self,
            topology,
        }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for n in &self.nodes {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        write!(f, " (cost {:.4})", self.cost)
    }
}

/// Helper returned by [`Route::display_with`]; formats node names.
#[derive(Debug)]
pub struct RouteDisplay<'a> {
    route: &'a Route,
    topology: &'a Topology,
}

impl fmt::Display for RouteDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &n in self.route.nodes() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", self.topology.node(n).name())?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use crate::units::Mbps;

    fn line() -> (Topology, [NodeId; 3], [LinkId; 2]) {
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("x");
        let n1 = b.add_node("y");
        let n2 = b.add_node("z");
        let l0 = b.add_link(n0, n1, Mbps::new(2.0)).unwrap();
        let l1 = b.add_link(n1, n2, Mbps::new(2.0)).unwrap();
        (b.build(), [n0, n1, n2], [l0, l1])
    }

    #[test]
    fn accessors() {
        let (_, [n0, n1, n2], [l0, l1]) = line();
        let r = Route::new(vec![n0, n1, n2], vec![l0, l1], 0.5);
        assert_eq!(r.source(), n0);
        assert_eq!(r.target(), n2);
        assert_eq!(r.hops(), 2);
        assert_eq!(r.cost(), 0.5);
        assert!(r.contains_link(l0));
        assert!(r.contains_node(n1));
        assert!(!r.contains_link(LinkId::new(99)));
    }

    #[test]
    fn trivial_route() {
        let r = Route::trivial(NodeId::new(4));
        assert_eq!(r.source(), r.target());
        assert_eq!(r.hops(), 0);
        assert_eq!(r.cost(), 0.0);
    }

    #[test]
    #[should_panic(expected = "k+1 nodes")]
    fn mismatched_lengths_rejected() {
        let _ = Route::new(vec![NodeId::new(0)], vec![LinkId::new(0)], 0.0);
    }

    #[test]
    fn reversal_swaps_ends() {
        let (_, [n0, _, n2], [l0, l1]) = line();
        let r = Route::new(vec![n0, NodeId::new(1), n2], vec![l0, l1], 1.0);
        let rev = r.reversed();
        assert_eq!(rev.source(), n2);
        assert_eq!(rev.target(), n0);
        assert_eq!(rev.links(), &[l1, l0]);
        assert_eq!(rev.cost(), 1.0);
    }

    #[test]
    fn validity_check() {
        let (topo, [n0, n1, n2], [l0, l1]) = line();
        let good = Route::new(vec![n0, n1, n2], vec![l0, l1], 1.0);
        assert!(good.is_valid_in(&topo));
        // l1 does not join n0 and n1.
        let bad = Route::new(vec![n0, n1], vec![l1], 1.0);
        assert!(!bad.is_valid_in(&topo));
    }

    #[test]
    fn display_with_names() {
        let (topo, [n0, n1, n2], [l0, l1]) = line();
        let r = Route::new(vec![n0, n1, n2], vec![l0, l1], 1.0);
        assert_eq!(r.display_with(&topo).to_string(), "x,y,z");
        assert!(r.to_string().contains("n0,n1,n2"));
    }
}
