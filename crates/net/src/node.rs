//! Network nodes.

use serde::{Deserialize, Serialize};

use crate::ids::NodeId;

/// A node of the VoD network.
///
/// In the paper every participating node hosts a video server (it may also
/// run other Internet services); pure transit routers are modelled with
/// [`NodeKind::Transit`].
///
/// # Examples
///
/// ```
/// use vod_net::TopologyBuilder;
///
/// let mut b = TopologyBuilder::new();
/// let athens = b.add_node("Athens");
/// let topo = b.build();
/// assert_eq!(topo.node(athens).name(), "Athens");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    name: String,
    kind: NodeKind,
}

/// The role a node plays in the VoD service.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NodeKind {
    /// The node hosts a video server participating in the service.
    #[default]
    VideoServer,
    /// The node only forwards traffic and hosts no video server.
    Transit,
}

impl Node {
    pub(crate) fn new(id: NodeId, name: String, kind: NodeKind) -> Self {
        Node { id, name, kind }
    }

    /// Returns this node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Returns this node's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the node's role in the service.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Returns true if a video server runs on this node.
    pub fn is_video_server(&self) -> bool {
        self.kind == NodeKind::VideoServer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_accessors() {
        let n = Node::new(NodeId::new(1), "Patra".to_string(), NodeKind::VideoServer);
        assert_eq!(n.id(), NodeId::new(1));
        assert_eq!(n.name(), "Patra");
        assert_eq!(n.kind(), NodeKind::VideoServer);
        assert!(n.is_video_server());
    }

    #[test]
    fn transit_nodes_host_no_server() {
        let n = Node::new(NodeId::new(0), "ix".to_string(), NodeKind::Transit);
        assert!(!n.is_video_server());
    }

    #[test]
    fn default_kind_is_video_server() {
        assert_eq!(NodeKind::default(), NodeKind::VideoServer);
    }
}
