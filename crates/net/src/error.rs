//! Error types for the network model.

use std::error::Error;
use std::fmt;

use crate::ids::{LinkId, NodeId};

/// Errors produced by topology construction and routing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// A node id referred to a node that does not exist in the topology.
    UnknownNode(NodeId),
    /// A link id referred to a link that does not exist in the topology.
    UnknownLink(LinkId),
    /// A link was added with both endpoints equal.
    SelfLoop(NodeId),
    /// A link was added between endpoints that are already connected.
    DuplicateLink(NodeId, NodeId),
    /// A node was added with a name that is already taken.
    DuplicateNodeName(String),
    /// A weight table did not match the topology's link count.
    WeightCountMismatch {
        /// Number of links in the topology.
        expected: usize,
        /// Number of weights supplied.
        actual: usize,
    },
    /// Dijkstra's algorithm was invoked with a negative link weight.
    NegativeWeight(LinkId, f64),
    /// Dijkstra's algorithm was invoked with a NaN link weight.
    InvalidWeight(LinkId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(id) => write!(f, "unknown node {id}"),
            NetError::UnknownLink(id) => write!(f, "unknown link {id}"),
            NetError::SelfLoop(id) => write!(f, "self loop at node {id}"),
            NetError::DuplicateLink(a, b) => {
                write!(f, "nodes {a} and {b} are already connected")
            }
            NetError::DuplicateNodeName(name) => {
                write!(f, "node name {name:?} is already taken")
            }
            NetError::WeightCountMismatch { expected, actual } => write!(
                f,
                "weight table has {actual} entries but the topology has {expected} links"
            ),
            NetError::NegativeWeight(id, w) => {
                write!(f, "link {id} has negative weight {w}")
            }
            NetError::InvalidWeight(id) => write!(f, "link {id} has a NaN weight"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs = [
            NetError::UnknownNode(NodeId::new(3)).to_string(),
            NetError::UnknownLink(LinkId::new(2)).to_string(),
            NetError::SelfLoop(NodeId::new(0)).to_string(),
            NetError::DuplicateLink(NodeId::new(0), NodeId::new(1)).to_string(),
            NetError::DuplicateNodeName("Athens".into()).to_string(),
            NetError::WeightCountMismatch {
                expected: 7,
                actual: 6,
            }
            .to_string(),
            NetError::NegativeWeight(LinkId::new(1), -0.5).to_string(),
            NetError::InvalidWeight(LinkId::new(1)).to_string(),
        ];
        for msg in msgs {
            assert!(!msg.is_empty());
        }
        assert!(NetError::UnknownNode(NodeId::new(3))
            .to_string()
            .contains("n3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
