//! The network topology: nodes, links and adjacency.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::ids::{LinkId, NodeId};
use crate::link::Link;
use crate::node::{Node, NodeKind};
use crate::units::Mbps;

/// An entry in a node's adjacency list: the incident link and the node at
/// its far end.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Incidence {
    /// The incident link.
    pub link: LinkId,
    /// The neighbor reached over [`Incidence::link`].
    pub neighbor: NodeId,
}

/// An immutable network topology of named nodes and capacity-labelled
/// bidirectional links.
///
/// Built with [`TopologyBuilder`]. The node set is fixed once built — the
/// paper's service assumes "a network the participating nodes of which are
/// known in advance"; growing the network means building a new topology
/// (and, in `vod-db`, updating the corresponding database entries).
///
/// # Examples
///
/// ```
/// use vod_net::{Mbps, TopologyBuilder};
///
/// # fn main() -> Result<(), vod_net::NetError> {
/// let mut b = TopologyBuilder::new();
/// let patra = b.add_node("Patra");
/// let athens = b.add_node("Athens");
/// let l = b.add_link(patra, athens, Mbps::new(2.0))?;
/// let topo = b.build();
/// assert_eq!(topo.link(l).capacity(), Mbps::new(2.0));
/// assert_eq!(topo.link_between(patra, athens), Some(l));
/// assert!(topo.is_connected());
/// # Ok(())
/// # }
/// ```
/// Adjacency is stored in CSR (compressed sparse row) form: the
/// incidences of node `i` are the contiguous slice
/// `adj_entries[adj_offsets[i] .. adj_offsets[i + 1]]`, in link-id
/// order. The flat layout keeps the Dijkstra/LVN hot loops on one
/// cache-friendly array instead of chasing per-node `Vec` pointers.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    adj_offsets: Vec<u32>,
    adj_entries: Vec<Incidence>,
}

/// Builds the CSR arrays from a link list. Filling scans links in id
/// order, so each node's incidences come out sorted by link id — the
/// same order the old per-node `Vec<Incidence>` lists had, which keeps
/// relaxation order (and therefore float summation and tie-breaking)
/// bit-identical.
fn build_csr(node_count: usize, links: &[Link]) -> (Vec<u32>, Vec<Incidence>) {
    let mut offsets = vec![0u32; node_count + 1];
    for link in links {
        offsets[link.a().index() + 1] += 1;
        offsets[link.b().index() + 1] += 1;
    }
    for i in 0..node_count {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor: Vec<u32> = offsets[..node_count].to_vec();
    let mut entries = vec![
        Incidence {
            link: LinkId::new(0),
            neighbor: NodeId::new(0),
        };
        links.len() * 2
    ];
    for link in links {
        let a = link.a().index();
        let b = link.b().index();
        entries[cursor[a] as usize] = Incidence {
            link: link.id(),
            neighbor: link.b(),
        };
        cursor[a] += 1;
        entries[cursor[b] as usize] = Incidence {
            link: link.id(),
            neighbor: link.a(),
        };
        cursor[b] += 1;
    }
    (offsets, entries)
}

impl Topology {
    fn from_parts(nodes: Vec<Node>, links: Vec<Link>) -> Self {
        let (adj_offsets, adj_entries) = build_csr(nodes.len(), &links);
        Topology {
            nodes,
            links,
            adj_offsets,
            adj_entries,
        }
    }

    /// Returns the number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Returns the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Returns the node with the given id, or an error for foreign ids.
    pub fn try_node(&self, id: NodeId) -> Result<&Node, NetError> {
        self.nodes.get(id.index()).ok_or(NetError::UnknownNode(id))
    }

    /// Returns the link with the given id, or an error for foreign ids.
    pub fn try_link(&self, id: LinkId) -> Result<&Link, NetError> {
        self.links.get(id.index()).ok_or(NetError::UnknownLink(id))
    }

    /// Iterates over all nodes in id order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Iterates over all links in id order.
    pub fn links(&self) -> impl ExactSizeIterator<Item = &Link> {
        self.links.iter()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// Iterates over all link ids.
    pub fn link_ids(&self) -> impl ExactSizeIterator<Item = LinkId> {
        (0..self.links.len() as u32).map(LinkId::new)
    }

    /// Returns the adjacency list of `node`: each incident link together
    /// with the neighbor it leads to.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this topology.
    pub fn adjacent(&self, node: NodeId) -> &[Incidence] {
        let start = self.adj_offsets[node.index()] as usize;
        let end = self.adj_offsets[node.index() + 1] as usize;
        &self.adj_entries[start..end]
    }

    /// The position of `node`'s adjacency slice within
    /// [`adjacency_entries`](Self::adjacency_entries); lets callers keep
    /// side tables (e.g. per-incidence link weights) index-aligned with
    /// the adjacency CSR.
    pub(crate) fn adjacency_range(&self, node: NodeId) -> std::ops::Range<usize> {
        self.adj_offsets[node.index()] as usize..self.adj_offsets[node.index() + 1] as usize
    }

    /// The full adjacency CSR entry array, concatenated in node order;
    /// [`adjacency_range`](Self::adjacency_range) indexes into it.
    pub(crate) fn adjacency_entries(&self) -> &[Incidence] {
        &self.adj_entries
    }

    /// Returns the degree (number of incident links) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this topology.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacent(node).len()
    }

    /// Finds a node by its name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.name() == name).map(Node::id)
    }

    /// Returns the link connecting `a` and `b`, if one exists.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        if a.index() >= self.nodes.len() {
            return None;
        }
        self.adjacent(a)
            .iter()
            .find(|inc| inc.neighbor == b)
            .map(|inc| inc.link)
    }

    /// Returns true if every node can reach every other node.
    ///
    /// An empty topology is considered connected.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for inc in self.adjacent(n) {
                if !seen[inc.neighbor.index()] {
                    seen[inc.neighbor.index()] = true;
                    count += 1;
                    stack.push(inc.neighbor);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Sum of all link capacities.
    pub fn total_capacity(&self) -> Mbps {
        self.links.iter().map(Link::capacity).sum()
    }

    /// Node ids of all nodes that host a video server.
    pub fn video_server_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_video_server())
            .map(Node::id)
            .collect()
    }
}

/// Incremental builder for [`Topology`] (C-BUILDER).
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    names: HashMap<String, NodeId>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a video-server node with the given name and returns its id.
    ///
    /// Duplicate names are allowed here but rejected by
    /// [`TopologyBuilder::try_add_node`]; prefer the fallible variant when
    /// names come from external input.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node_with_kind(name, NodeKind::VideoServer)
    }

    /// Adds a node with an explicit [`NodeKind`] and returns its id.
    pub fn add_node_with_kind(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        let name = name.into();
        self.names.entry(name.clone()).or_insert(id);
        self.nodes.push(Node::new(id, name, kind));
        id
    }

    /// Adds a node, rejecting duplicate names.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::DuplicateNodeName`] if a node with this name
    /// already exists.
    pub fn try_add_node(
        &mut self,
        name: impl Into<String>,
        kind: NodeKind,
    ) -> Result<NodeId, NetError> {
        let name = name.into();
        if self.names.contains_key(&name) {
            return Err(NetError::DuplicateNodeName(name));
        }
        Ok(self.add_node_with_kind(name, kind))
    }

    /// Adds a bidirectional link between `a` and `b` with the given
    /// capacity and returns its id.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownNode`] if either endpoint has not been added.
    /// * [`NetError::SelfLoop`] if `a == b`.
    /// * [`NetError::DuplicateLink`] if `a` and `b` are already connected.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, capacity: Mbps) -> Result<LinkId, NetError> {
        if a.index() >= self.nodes.len() {
            return Err(NetError::UnknownNode(a));
        }
        if b.index() >= self.nodes.len() {
            return Err(NetError::UnknownNode(b));
        }
        if a == b {
            return Err(NetError::SelfLoop(a));
        }
        if self.links.iter().any(|l| l.touches(a) && l.touches(b)) {
            return Err(NetError::DuplicateLink(a, b));
        }
        let id = LinkId::new(self.links.len() as u32);
        self.links.push(Link::new(id, a, b, capacity));
        Ok(id)
    }

    /// Returns the number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the number of links added so far.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Finalizes the topology, computing the CSR adjacency arrays.
    pub fn build(self) -> Topology {
        Topology::from_parts(self.nodes, self.links)
    }
}

// Manual serde impls: only nodes and links are persisted; the CSR
// adjacency is derived data and is rebuilt on deserialize, so a stored
// topology can never carry inconsistent adjacency.
impl Serialize for Topology {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("nodes".to_string(), self.nodes.to_value()),
            ("links".to_string(), self.links.to_value()),
        ])
    }
}

impl Deserialize for Topology {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let nodes: Vec<Node> = match v.get_field("nodes") {
            Some(f) => Deserialize::from_value(f)?,
            None => return Err(serde::Error::custom("missing field `nodes` of `Topology`")),
        };
        let links: Vec<Link> = match v.get_field("links") {
            Some(f) => Deserialize::from_value(f)?,
            None => return Err(serde::Error::custom("missing field `links` of `Topology`")),
        };
        Ok(Topology::from_parts(nodes, links))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Topology, [NodeId; 3], [LinkId; 3]) {
        let mut b = TopologyBuilder::new();
        let n0 = b.add_node("a");
        let n1 = b.add_node("b");
        let n2 = b.add_node("c");
        let l0 = b.add_link(n0, n1, Mbps::new(2.0)).unwrap();
        let l1 = b.add_link(n1, n2, Mbps::new(18.0)).unwrap();
        let l2 = b.add_link(n2, n0, Mbps::new(34.0)).unwrap();
        (b.build(), [n0, n1, n2], [l0, l1, l2])
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let (topo, nodes, links) = triangle();
        assert_eq!(topo.node_count(), 3);
        assert_eq!(topo.link_count(), 3);
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.index(), i);
        }
        for (i, l) in links.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (topo, nodes, _) = triangle();
        for n in nodes {
            assert_eq!(topo.degree(n), 2);
            for inc in topo.adjacent(n) {
                assert!(topo
                    .adjacent(inc.neighbor)
                    .iter()
                    .any(|back| back.neighbor == n && back.link == inc.link));
            }
        }
    }

    #[test]
    fn link_between_finds_links_both_ways() {
        let (topo, [a, b, c], [l0, l1, l2]) = triangle();
        assert_eq!(topo.link_between(a, b), Some(l0));
        assert_eq!(topo.link_between(b, a), Some(l0));
        assert_eq!(topo.link_between(b, c), Some(l1));
        assert_eq!(topo.link_between(c, a), Some(l2));
    }

    #[test]
    fn self_loops_rejected() {
        let mut b = TopologyBuilder::new();
        let n = b.add_node("solo");
        assert_eq!(b.add_link(n, n, Mbps::new(1.0)), Err(NetError::SelfLoop(n)));
    }

    #[test]
    fn duplicate_links_rejected() {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_link(x, y, Mbps::new(1.0)).unwrap();
        assert_eq!(
            b.add_link(y, x, Mbps::new(1.0)),
            Err(NetError::DuplicateLink(y, x))
        );
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let ghost = NodeId::new(9);
        assert_eq!(
            b.add_link(x, ghost, Mbps::new(1.0)),
            Err(NetError::UnknownNode(ghost))
        );
    }

    #[test]
    fn duplicate_names_rejected_by_try_add() {
        let mut b = TopologyBuilder::new();
        b.try_add_node("Athens", NodeKind::VideoServer).unwrap();
        assert_eq!(
            b.try_add_node("Athens", NodeKind::Transit),
            Err(NetError::DuplicateNodeName("Athens".into()))
        );
    }

    #[test]
    fn find_node_by_name() {
        let (topo, [a, ..], _) = triangle();
        assert_eq!(topo.find_node("a"), Some(a));
        assert_eq!(topo.find_node("zz"), None);
    }

    #[test]
    fn connectivity() {
        let (topo, ..) = triangle();
        assert!(topo.is_connected());

        let mut b = TopologyBuilder::new();
        b.add_node("island1");
        b.add_node("island2");
        assert!(!b.build().is_connected());

        assert!(TopologyBuilder::new().build().is_connected());
    }

    #[test]
    fn total_capacity_sums_links() {
        let (topo, ..) = triangle();
        assert_eq!(topo.total_capacity(), Mbps::new(54.0));
    }

    #[test]
    fn video_server_nodes_filters_transit() {
        let mut b = TopologyBuilder::new();
        let s = b.add_node("server");
        let t = b.add_node_with_kind("router", NodeKind::Transit);
        b.add_link(s, t, Mbps::new(2.0)).unwrap();
        let topo = b.build();
        assert_eq!(topo.video_server_nodes(), vec![s]);
    }

    #[test]
    fn try_accessors_reject_foreign_ids() {
        let (topo, ..) = triangle();
        assert!(topo.try_node(NodeId::new(99)).is_err());
        assert!(topo.try_link(LinkId::new(99)).is_err());
        assert!(topo.try_node(NodeId::new(0)).is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let (topo, ..) = triangle();
        let json = serde_json::to_string(&topo).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(topo, back);
    }
}
