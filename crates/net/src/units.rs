//! Physical units used throughout the network model.
//!
//! The paper expresses all link capacities and traffic volumes in megabits
//! per second; [`Mbps`] is a validated newtype for that quantity
//! (C-NEWTYPE). Link load is expressed as a dimensionless fraction of
//! capacity via [`Fraction`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A non-negative bandwidth or traffic volume in megabits per second.
///
/// # Examples
///
/// ```
/// use vod_net::Mbps;
///
/// let capacity = Mbps::new(18.0);
/// let used = Mbps::from_kbps(1_700.0);
/// assert!((used / capacity - 0.094_444).abs() < 1e-5);
/// ```
#[derive(Copy, Clone, PartialEq, PartialOrd, Debug, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Mbps(f64);

impl Mbps {
    /// Zero bandwidth.
    pub const ZERO: Mbps = Mbps(0.0);

    /// Creates a bandwidth value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative, NaN or infinite. Use
    /// [`Mbps::try_new`] for fallible construction.
    pub fn new(value: f64) -> Self {
        Self::try_new(value).expect("bandwidth must be finite and non-negative")
    }

    /// Creates a bandwidth value, returning `None` when `value` is
    /// negative, NaN or infinite.
    pub fn try_new(value: f64) -> Option<Self> {
        if value.is_finite() && value >= 0.0 {
            Some(Mbps(value))
        } else {
            None
        }
    }

    /// Const constructor for crate-internal tables of known-valid values.
    pub(crate) const fn from_const(value: f64) -> Self {
        Mbps(value)
    }

    /// Creates a bandwidth value from kilobits per second.
    ///
    /// # Panics
    ///
    /// Panics if `kbps` is negative, NaN or infinite.
    pub fn from_kbps(kbps: f64) -> Self {
        Mbps::new(kbps / 1_000.0)
    }

    /// Creates a bandwidth value from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative, NaN or infinite.
    pub fn from_bps(bps: f64) -> Self {
        Mbps::new(bps / 1_000_000.0)
    }

    /// Returns the value in megabits per second.
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns the value in bits per second.
    pub fn as_bps(self) -> f64 {
        self.0 * 1_000_000.0
    }

    /// Returns the smaller of two bandwidths.
    pub fn min(self, other: Mbps) -> Mbps {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two bandwidths.
    pub fn max(self, other: Mbps) -> Mbps {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Subtracts `other`, clamping at zero instead of going negative.
    pub fn saturating_sub(self, other: Mbps) -> Mbps {
        Mbps((self.0 - other.0).max(0.0))
    }

    /// Returns true if this is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Display for Mbps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Mbps", self.0)
    }
}

impl Add for Mbps {
    type Output = Mbps;
    fn add(self, rhs: Mbps) -> Mbps {
        Mbps(self.0 + rhs.0)
    }
}

impl AddAssign for Mbps {
    fn add_assign(&mut self, rhs: Mbps) {
        self.0 += rhs.0;
    }
}

impl Sub for Mbps {
    type Output = Mbps;
    /// Exact subtraction.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the result would be negative; use
    /// [`Mbps::saturating_sub`] when underflow is expected.
    fn sub(self, rhs: Mbps) -> Mbps {
        debug_assert!(
            self.0 >= rhs.0,
            "Mbps subtraction underflow: {} - {}",
            self.0,
            rhs.0
        );
        Mbps((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Mbps {
    type Output = Mbps;
    fn mul(self, rhs: f64) -> Mbps {
        Mbps::new(self.0 * rhs)
    }
}

impl Div for Mbps {
    type Output = f64;
    fn div(self, rhs: Mbps) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<f64> for Mbps {
    type Output = Mbps;
    fn div(self, rhs: f64) -> Mbps {
        Mbps::new(self.0 / rhs)
    }
}

impl Sum for Mbps {
    fn sum<I: Iterator<Item = Mbps>>(iter: I) -> Mbps {
        iter.fold(Mbps::ZERO, |acc, x| acc + x)
    }
}

/// A dimensionless fraction, typically a link utilization in `[0, 1]`.
///
/// Utilizations above `1.0` are representable (an SNMP reading can exceed
/// nominal capacity on over-subscribed links) but negative or non-finite
/// values are not.
///
/// # Examples
///
/// ```
/// use vod_net::units::Fraction;
///
/// let u = Fraction::from_percent(38.8);
/// assert!((u.get() - 0.388).abs() < 1e-12);
/// assert_eq!(u.as_percent(), 38.8);
/// ```
#[derive(Copy, Clone, PartialEq, PartialOrd, Debug, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Fraction(f64);

impl Fraction {
    /// The zero fraction.
    pub const ZERO: Fraction = Fraction(0.0);
    /// The unit fraction (100%).
    pub const ONE: Fraction = Fraction(1.0);

    /// Creates a fraction.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative, NaN or infinite.
    pub fn new(value: f64) -> Self {
        Self::try_new(value).expect("fraction must be finite and non-negative")
    }

    /// Creates a fraction, returning `None` when `value` is negative, NaN
    /// or infinite.
    pub fn try_new(value: f64) -> Option<Self> {
        if value.is_finite() && value >= 0.0 {
            Some(Fraction(value))
        } else {
            None
        }
    }

    /// Creates a fraction from a percentage, e.g. `38.8` → `0.388`.
    ///
    /// # Panics
    ///
    /// Panics if `percent` is negative, NaN or infinite.
    pub fn from_percent(percent: f64) -> Self {
        Fraction::new(percent / 100.0)
    }

    /// Returns the raw fractional value.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Returns the value as a percentage, e.g. `0.388` → `38.8`.
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Clamps the fraction into `[0, 1]`.
    pub fn clamp_unit(self) -> Fraction {
        Fraction(self.0.clamp(0.0, 1.0))
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_constructors_validate() {
        assert_eq!(Mbps::new(2.0).as_f64(), 2.0);
        assert!(Mbps::try_new(-1.0).is_none());
        assert!(Mbps::try_new(f64::NAN).is_none());
        assert!(Mbps::try_new(f64::INFINITY).is_none());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn mbps_new_panics_on_negative() {
        let _ = Mbps::new(-0.5);
    }

    #[test]
    fn mbps_unit_conversions() {
        assert_eq!(Mbps::from_kbps(1_820.0).as_f64(), 1.82);
        assert_eq!(Mbps::from_bps(100.0).as_f64(), 0.0001);
        assert_eq!(Mbps::new(2.0).as_bps(), 2_000_000.0);
    }

    #[test]
    fn mbps_arithmetic() {
        let a = Mbps::new(2.0);
        let b = Mbps::new(0.5);
        assert_eq!((a + b).as_f64(), 2.5);
        assert_eq!((a - b).as_f64(), 1.5);
        assert_eq!((a * 2.0).as_f64(), 4.0);
        assert_eq!(a / b, 4.0);
        assert_eq!((a / 2.0).as_f64(), 1.0);
        assert_eq!(b.saturating_sub(a), Mbps::ZERO);
        let total: Mbps = [a, b, b].into_iter().sum();
        assert_eq!(total.as_f64(), 3.0);
    }

    #[test]
    fn mbps_min_max() {
        let a = Mbps::new(2.0);
        let b = Mbps::new(18.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn fraction_percent_round_trip() {
        let u = Fraction::from_percent(91.0);
        assert!((u.get() - 0.91).abs() < 1e-12);
        assert!((u.as_percent() - 91.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_validates() {
        assert!(Fraction::try_new(-0.1).is_none());
        assert!(Fraction::try_new(f64::NAN).is_none());
        // Over-subscription is representable.
        assert_eq!(Fraction::new(1.5).get(), 1.5);
        assert_eq!(Fraction::new(1.5).clamp_unit(), Fraction::ONE);
    }

    #[test]
    fn zero_constants() {
        assert!(Mbps::ZERO.is_zero());
        assert_eq!(Fraction::ZERO.get(), 0.0);
        assert_eq!(Fraction::ONE.get(), 1.0);
    }
}
