//! Persistent worker pool for parallel batch Dijkstra (feature
//! `parallel`).
//!
//! [`RoutingEngine::select_batch`](crate::engine::RoutingEngine::select_batch)
//! used to spawn scoped threads on every call; a thread spawn costs tens
//! of microseconds, so the fan-out only ever paid off for very large
//! batches and the bench rows were flat across worker counts. This
//! module keeps a long-lived pool owned by the engine instead: workers
//! block on a shared job channel, each owns a persistent
//! [`DijkstraScratch`], and per-batch dispatch cost drops to a handful of
//! channel operations.
//!
//! Determinism: jobs carry contiguous index ranges into the shared home
//! list and every result is tagged with its absolute slot index, so the
//! caller reassembles results in request order no matter how workers
//! interleave. Shared inputs travel as `Arc<Topology>` /
//! `Arc<LinkWeights>` clones (the workspace forbids `unsafe`, so scoped
//! borrows are not an option for threads that outlive the call); the
//! engine caches both Arcs so steady-state batches clone two pointers,
//! not the data.
//!
//! Worker loss is not a correctness event: the collector hands back
//! `None` for any slot whose result never arrived and the engine solves
//! those homes inline, so results — including the first-error-in-home-
//! order semantics — stay identical to the sequential path.
//!
//! This module and `engine.rs` are the only blessed thread sites in the
//! workspace — vod-check's analyze rule L009 flags `spawn`/`mpsc` use
//! anywhere else.

use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use crate::dijkstra::{dijkstra_with_scratch, DijkstraScratch, ShortestPaths};
use crate::error::NetError;
use crate::ids::NodeId;
use crate::lvn::LinkWeights;
use crate::topology::Topology;

/// One unit of batch work: solve `homes[range]` against a shared
/// topology + weight table, sending each tree back tagged with its
/// absolute index.
struct Job {
    topology: Arc<Topology>,
    weights: Arc<LinkWeights>,
    homes: Arc<Vec<NodeId>>,
    range: Range<usize>,
    results: Sender<(usize, Result<ShortestPaths, NetError>)>,
}

/// A long-lived pool of Dijkstra workers fed over an mpsc channel.
///
/// The pool starts empty and grows on demand up to the largest worker
/// count any batch has asked for; idle workers cost one parked thread
/// each. Dropping the pool closes the job channel and joins every
/// worker.
#[derive(Debug)]
pub(crate) struct WorkerPool {
    jobs: Sender<Job>,
    /// Shared tail of the job channel; workers take turns receiving.
    intake: Arc<Mutex<Receiver<Job>>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    pub(crate) fn new() -> Self {
        let (jobs, rx) = channel();
        WorkerPool {
            jobs,
            intake: Arc::new(Mutex::new(rx)),
            workers: Vec::new(),
        }
    }

    /// Grows the pool so at least `count` workers are alive. Workers are
    /// never reaped — worker counts are small (≈ CPU count) and a shrunk
    /// batch simply leaves some of them parked on the channel.
    fn ensure_workers(&mut self, count: usize) {
        while self.workers.len() < count {
            let intake = Arc::clone(&self.intake);
            self.workers
                .push(std::thread::spawn(move || worker_main(&intake)));
        }
    }

    /// Solves every home across `workers` contiguous chunks and returns
    /// the per-home results in input order (`None` for slots lost to a
    /// dead worker — the caller backfills those inline).
    #[allow(clippy::type_complexity)]
    pub(crate) fn solve(
        &mut self,
        topology: &Arc<Topology>,
        weights: &Arc<LinkWeights>,
        homes: &Arc<Vec<NodeId>>,
        workers: usize,
    ) -> Vec<Option<Result<ShortestPaths, NetError>>> {
        let mut out: Vec<Option<Result<ShortestPaths, NetError>>> =
            (0..homes.len()).map(|_| None).collect();
        if homes.is_empty() {
            return out;
        }
        self.ensure_workers(workers);
        let (results, collect) = channel();
        let chunk = homes.len().div_ceil(workers.max(1));
        let mut start = 0;
        while start < homes.len() {
            let end = (start + chunk).min(homes.len());
            let job = Job {
                topology: Arc::clone(topology),
                weights: Arc::clone(weights),
                homes: Arc::clone(homes),
                range: start..end,
                results: results.clone(),
            };
            if self.jobs.send(job).is_err() {
                // Channel closed (all workers died): leave the slots for
                // the caller's inline fallback.
                break;
            }
            start = end;
        }
        drop(results);
        // Every job sender has been moved or dropped; the iterator ends
        // once the last worker finishes its chunk.
        for (index, result) in collect {
            out[index] = Some(result);
        }
        out
    }

    /// Number of live workers (for tests and stats).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Replace the sender to close the channel, then join: each
        // worker's `recv` errors out once the queue drains.
        let (closed, _) = channel();
        self.jobs = closed;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker loop: take one job at a time from the shared receiver, solve
/// its home range with a thread-local scratch, and stream results back.
fn worker_main(intake: &Mutex<Receiver<Job>>) {
    let mut scratch = DijkstraScratch::new();
    loop {
        // Hold the intake lock only for the dequeue — solving happens
        // unlocked so other workers can pick up jobs concurrently. A
        // poisoned lock just means a sibling worker panicked mid-recv;
        // the receiver itself is still sound.
        let job = {
            let intake = intake.lock().unwrap_or_else(PoisonError::into_inner);
            match intake.recv() {
                Ok(job) => job,
                Err(_) => return, // pool dropped
            }
        };
        for index in job.range.clone() {
            let home = job.homes[index];
            let result = dijkstra_with_scratch(&job.topology, &job.weights, home, &mut scratch);
            if job.results.send((index, result)).is_err() {
                break; // collector gone; drop the rest of the chunk
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::topology::TopologyBuilder;
    use crate::units::Mbps;

    fn line_topology(n: usize) -> (Topology, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|i| b.add_node(format!("n{i}"))).collect();
        for i in 1..n {
            b.add_link(nodes[i - 1], nodes[i], Mbps::new(10.0)).unwrap();
        }
        (b.build(), nodes)
    }

    #[test]
    fn pool_results_match_sequential_in_order() {
        let (topo, nodes) = line_topology(12);
        let weights = Arc::new(LinkWeights::uniform(11, 0.5));
        let topo = Arc::new(topo);
        let homes = Arc::new(nodes.clone());
        let mut pool = WorkerPool::new();
        for workers in [1, 2, 3, 5, 16] {
            let solved = pool.solve(&topo, &weights, &homes, workers);
            assert_eq!(solved.len(), homes.len());
            for (i, slot) in solved.into_iter().enumerate() {
                let got = slot.expect("no worker died").expect("valid inputs");
                let want = dijkstra(&topo, &weights, homes[i]).unwrap();
                assert_eq!(got, want, "workers={workers} home={i}");
            }
        }
        // The pool grew to the high-water mark and no further.
        assert_eq!(pool.worker_count(), 16);
    }

    #[test]
    fn errors_are_reported_per_slot() {
        let (topo, nodes) = line_topology(4);
        // Weight table too short: every run fails validation.
        let weights = Arc::new(LinkWeights::uniform(1, 0.5));
        let topo = Arc::new(topo);
        let homes = Arc::new(nodes);
        let mut pool = WorkerPool::new();
        let solved = pool.solve(&topo, &weights, &homes, 2);
        for slot in solved {
            assert!(matches!(
                slot.expect("no worker died"),
                Err(NetError::WeightCountMismatch { .. })
            ));
        }
    }

    #[test]
    fn empty_batch_spawns_nothing() {
        let (topo, _) = line_topology(3);
        let weights = Arc::new(LinkWeights::uniform(2, 1.0));
        let mut pool = WorkerPool::new();
        let solved = pool.solve(&Arc::new(topo), &weights, &Arc::new(Vec::new()), 4);
        assert!(solved.is_empty());
        assert_eq!(pool.worker_count(), 0);
    }
}
