//! Network model for the dynamic distributed Video-on-Demand service.
//!
//! This crate implements the networking substrate of the VoD service
//! proposed by Bouras, Kapoulas, Konidaris and Sevasti in *"A Dynamic
//! Distributed Video on Demand Service"* (ICDCS 2000):
//!
//! * a [`Topology`] of named nodes and bidirectional capacity-labelled
//!   links, built with [`TopologyBuilder`];
//! * per-link traffic state in a [`TrafficSnapshot`];
//! * the paper's link-weighting scheme — the **Link Validation Number**
//!   (equations (1)–(4) of the paper) — in the [`lvn`] module;
//! * [Dijkstra's algorithm](dijkstra::dijkstra) over those weights,
//!   optionally recording a step-by-step [`DijkstraTrace`] in exactly the
//!   format of the paper's Tables 4 and 5;
//! * the Greek Research & Technology Network (GRNET) backbone used for the
//!   paper's case study, including the recorded SNMP readings of its
//!   Table 2 and the published LVN values of its Table 3
//!   ([`topologies::grnet`]);
//! * synthetic topology generators for scale experiments
//!   ([`topologies::patterns`], [`topologies::random`]).
//!
//! # Example
//!
//! Reproduce the heart of the paper's Experiment A: weight the GRNET
//! backbone with the 8am Link Validation Numbers and route from Patra.
//!
//! ```
//! use vod_net::topologies::grnet::{Grnet, GrnetNode, TimeOfDay};
//! use vod_net::lvn::{LvnComputer, LvnParams};
//! use vod_net::dijkstra::dijkstra;
//!
//! # fn main() -> Result<(), vod_net::NetError> {
//! let grnet = Grnet::new();
//! let snapshot = grnet.snapshot(TimeOfDay::T0800);
//! let weights = LvnComputer::new(grnet.topology(), &snapshot, LvnParams::default()).weights();
//! let paths = dijkstra(grnet.topology(), &weights, grnet.node(GrnetNode::Patra))?;
//! let to_xanthi = paths
//!     .route_to(grnet.node(GrnetNode::Xanthi))
//!     .expect("GRNET is connected");
//! assert_eq!(to_xanthi.hops(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dijkstra;
pub mod engine;
pub mod error;
pub mod ids;
pub mod kpaths;
pub mod link;
pub mod lvn;
pub mod node;
#[cfg(feature = "parallel")]
mod pool;
pub mod route;
pub mod snapshot;
mod sssp;
pub mod topologies;
pub mod topology;
pub mod trace;
pub mod units;

pub use engine::{BatchRequest, EngineSelection, EngineStats, RoutingEngine};
pub use error::NetError;
pub use ids::{LinkId, NodeId};
pub use link::Link;
pub use node::Node;
pub use route::Route;
pub use snapshot::{SnapshotEpoch, TrafficSnapshot};
pub use topology::{Topology, TopologyBuilder};
pub use trace::DijkstraTrace;
pub use units::Mbps;
