//! Step-by-step Dijkstra traces in the format of the paper's Tables 4/5.
//!
//! The paper documents its experiments with "the table of path values
//! occurring as the Dijkstra's algorithm is running": one row per settle
//! step, the set of settled nodes, and for every other node its tentative
//! distance `D_i` and tentative path (or `R` when still unreached).

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::ids::NodeId;
use crate::topology::Topology;

/// The label of one node at one step of the algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeLabel {
    /// The labelled node.
    pub node: NodeId,
    /// Tentative distance from the source, `None` while unreached
    /// (rendered as the paper's `R`).
    pub dist: Option<f64>,
    /// Tentative path from the source (empty while unreached).
    pub path: Vec<NodeId>,
}

/// One settle step: the set of settled nodes (in settle order) and the
/// label of every node after relaxation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStep {
    /// Nodes settled so far, in settle order.
    pub settled: Vec<NodeId>,
    /// Labels of all nodes (indexed by node id) after this step's
    /// relaxations.
    pub labels: Vec<NodeLabel>,
}

/// A full run trace, one [`TraceStep`] per settled node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DijkstraTrace {
    source: NodeId,
    steps: Vec<TraceStep>,
}

impl DijkstraTrace {
    /// Creates an empty trace for a run starting at `source`.
    pub fn new(source: NodeId) -> Self {
        DijkstraTrace {
            source,
            steps: Vec::new(),
        }
    }

    /// The source node of the traced run.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The recorded steps, in execution order.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    pub(crate) fn push_step(&mut self, step: TraceStep) {
        self.steps.push(step);
    }

    /// Renders the trace as a text table in the style of the paper's
    /// Tables 4 and 5: one row per step, a `{...}` settled set, and
    /// `D_i` / `Path` column pairs for every node except the source.
    ///
    /// Node names are taken from `topology`; unreached nodes show `R`.
    pub fn render(&self, topology: &Topology) -> String {
        let targets: Vec<NodeId> = topology.node_ids().filter(|&n| n != self.source).collect();

        let mut header = vec!["Step".to_string(), "Nodes".to_string()];
        for &t in &targets {
            header.push(format!("D{}", display_index(topology, t)));
            header.push("Path".to_string());
        }

        let mut rows = vec![header];
        for (i, step) in self.steps.iter().enumerate() {
            let mut row = vec![
                (i + 1).to_string(),
                format!(
                    "{{{}}}",
                    step.settled
                        .iter()
                        .map(|&n| topology.node(n).name().to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            ];
            for &t in &targets {
                let label = &step.labels[t.index()];
                match label.dist {
                    Some(d) => {
                        row.push(format!("{d:.4}"));
                        row.push(
                            label
                                .path
                                .iter()
                                .map(|&n| topology.node(n).name().to_string())
                                .collect::<Vec<_>>()
                                .join(","),
                        );
                    }
                    None => {
                        row.push("R".to_string());
                        row.push("-".to_string());
                    }
                }
            }
            rows.push(row);
        }

        render_table(&rows)
    }
}

/// The paper labels columns `D1..D6` after the `U1..U6` node names; for
/// arbitrary topologies fall back to a 1-based node index.
fn display_index(topology: &Topology, node: NodeId) -> String {
    let name = topology.node(node).name();
    if let Some(stripped) = name.strip_prefix('U') {
        if stripped.chars().all(|c| c.is_ascii_digit()) {
            return stripped.to_string();
        }
    }
    (node.index() + 1).to_string()
}

/// Renders rows of equal length as an aligned text table.
pub(crate) fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows[0].len();
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "| {:width$} ", cell, width = widths[i]);
        }
        out.push_str("|\n");
        if r == 0 {
            for &w in &widths {
                let _ = write!(out, "|{:-<width$}", "", width = w + 2);
            }
            out.push_str("|\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_with_trace;
    use crate::lvn::LinkWeights;
    use crate::topology::TopologyBuilder;
    use crate::units::Mbps;

    fn traced() -> (Topology, DijkstraTrace) {
        let mut b = TopologyBuilder::new();
        let u1 = b.add_node("U1");
        let u2 = b.add_node("U2");
        let u3 = b.add_node("U3");
        b.add_link(u1, u2, Mbps::new(2.0)).unwrap();
        b.add_link(u2, u3, Mbps::new(2.0)).unwrap();
        let topo = b.build();
        let w = LinkWeights::uniform(2, 1.0);
        let (_, trace) = dijkstra_with_trace(&topo, &w, u1).unwrap();
        (topo, trace)
    }

    #[test]
    fn render_contains_paper_style_markers() {
        let (topo, trace) = traced();
        let table = trace.render(&topo);
        assert!(table.contains("{U1}"), "settled set rendered: {table}");
        assert!(table.contains("D2"));
        assert!(table.contains("D3"));
        assert!(table.contains("U1,U2,U3"));
        // Step 1 has U3 unreached → R.
        assert!(table.contains("R"));
    }

    #[test]
    fn source_column_is_omitted() {
        let (topo, trace) = traced();
        let table = trace.render(&topo);
        assert!(!table.contains("D1"));
    }

    #[test]
    fn display_index_falls_back_to_position() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("Athens");
        let p = b.add_node("Patra");
        b.add_link(a, p, Mbps::new(2.0)).unwrap();
        let topo = b.build();
        assert_eq!(display_index(&topo, p), "2");
        assert_eq!(display_index(&topo, a), "1");
    }

    #[test]
    fn render_table_aligns_columns() {
        let rows = vec![
            vec!["h1".to_string(), "header2".to_string()],
            vec!["x".to_string(), "y".to_string()],
        ];
        let out = render_table(&rows);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn empty_table_renders_empty() {
        assert_eq!(render_table(&[]), "");
    }
}
