//! Dijkstra's shortest-path algorithm over [`LinkWeights`], plus a
//! Bellman–Ford reference implementation used for cross-validation.
//!
//! The paper's Virtual Routing Algorithm "proposes the use of the
//! Dijkstra's routing algorithm … The Dijkstra algorithm runs at the server
//! with which the client is directly connected. It determines, for each
//! server that has the video stored, the best route until the client's
//! adjacent server."
//!
//! [`dijkstra_with_trace`] additionally records the label table after every
//! settle step, which [`DijkstraTrace`] renders
//! in exactly the row format of the paper's Tables 4 and 5.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::NetError;
use crate::ids::{LinkId, NodeId};
use crate::lvn::LinkWeights;
use crate::route::Route;
use crate::topology::Topology;
use crate::trace::{DijkstraTrace, NodeLabel, TraceStep};

/// Shortest paths from a single source, as produced by [`dijkstra`].
///
/// Distances are stored densely as `f64` with `f64::INFINITY` marking
/// unreachable nodes — every finite label is a genuine path cost (the
/// relaxations skip non-finite weights), so the sentinel is unambiguous
/// and the hot loops here and in `crate::sssp` compare plain floats
/// instead of branching on an `Option` discriminant.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    prev: Vec<Option<(NodeId, LinkId)>>,
}

impl ShortestPaths {
    /// The source node the paths start from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The cost of the cheapest path to `target`, or `None` if `target` is
    /// unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn distance_to(&self, target: NodeId) -> Option<f64> {
        let d = self.dist[target.index()];
        d.is_finite().then_some(d)
    }

    /// Returns true if `target` is reachable from the source.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn is_reachable(&self, target: NodeId) -> bool {
        self.dist[target.index()].is_finite()
    }

    /// Reconstructs the cheapest route from the source to `target`, or
    /// `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn route_to(&self, target: NodeId) -> Option<Route> {
        let cost = self.distance_to(target)?;
        let mut nodes = vec![target];
        let mut links = Vec::new();
        let mut cur = target;
        while let Some((parent, link)) = self.prev[cur.index()] {
            nodes.push(parent);
            links.push(link);
            cur = parent;
        }
        debug_assert_eq!(cur, self.source);
        nodes.reverse();
        links.reverse();
        Some(Route::new(nodes, links, cost))
    }

    /// All reachable nodes with their distances, in node-id order.
    pub fn reachable(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .map(|(i, d)| (NodeId::new(i as u32), *d))
    }

    /// The parent edge of `target` in the shortest-path tree (`None` for
    /// the source and for unreachable nodes). Crate-internal: the dynamic
    /// repair pass ([`crate::sssp`]) walks and patches tree structure.
    pub(crate) fn parent(&self, target: NodeId) -> Option<(NodeId, LinkId)> {
        self.prev[target.index()]
    }

    /// Mutable access to the label arrays for in-place tree repair.
    /// Returns `(dist, prev)`; the two slices stay index-aligned with the
    /// topology's node ids, and `dist` uses the `f64::INFINITY` sentinel
    /// for unreachable nodes.
    #[allow(clippy::type_complexity)]
    pub(crate) fn labels_mut(&mut self) -> (&mut [f64], &mut [Option<(NodeId, LinkId)>]) {
        (&mut self.dist, &mut self.prev)
    }
}

/// Priority-queue entry ordered for a min-heap over f64 costs. Shared
/// with the dynamic tree-repair pass ([`crate::sssp`]), whose boundary
/// Dijkstra must pop in exactly the same (cost, node-id) order as the
/// from-scratch runs here.
#[derive(Debug, PartialEq)]
pub(crate) struct HeapEntry {
    pub(crate) cost: f64,
    pub(crate) node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (a max-heap) pops the smallest cost;
        // tie-break on node id for determinism.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable working memory for repeated Dijkstra runs.
///
/// [`dijkstra_with_scratch`] keeps its heap and settled-flag buffers
/// here between runs, so steady-state routing (the engine's per-request
/// hot path) performs no heap allocation beyond the returned
/// [`ShortestPaths`] — and none at all once the engine's path cache is
/// warm.
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    heap: BinaryHeap<HeapEntry>,
    settled: Vec<bool>,
}

impl DijkstraScratch {
    /// Creates empty scratch space (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs Dijkstra's algorithm from `source` over the given link weights.
///
/// # Errors
///
/// Returns an error if the weight table does not match the topology or
/// contains negative or NaN weights (Dijkstra requires non-negative
/// weights).
pub fn dijkstra(
    topology: &Topology,
    weights: &LinkWeights,
    source: NodeId,
) -> Result<ShortestPaths, NetError> {
    run(topology, weights, source, None).map(|(paths, _)| paths)
}

/// Like [`dijkstra`], reusing `scratch`'s internal buffers instead of
/// allocating fresh ones per run. Produces bit-identical results to
/// [`dijkstra`] (same relaxation order, same tie-breaking).
///
/// # Errors
///
/// Same conditions as [`dijkstra`].
pub fn dijkstra_with_scratch(
    topology: &Topology,
    weights: &LinkWeights,
    source: NodeId,
    scratch: &mut DijkstraScratch,
) -> Result<ShortestPaths, NetError> {
    weights.validate(topology)?;
    topology.try_node(source)?;

    let n = topology.node_count();
    let mut dist: Vec<f64> = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    scratch.settled.clear();
    scratch.settled.resize(n, false);
    scratch.heap.clear();

    dist[source.index()] = 0.0;
    scratch.heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });

    while let Some(HeapEntry { cost, node }) = scratch.heap.pop() {
        if scratch.settled[node.index()] {
            continue;
        }
        scratch.settled[node.index()] = true;

        for inc in topology.adjacent(node) {
            let w = weights.weight(inc.link);
            // Non-finite weights mask administratively-down links: an
            // unreachable-only-through-them node must stay `None`.
            if !w.is_finite() {
                continue;
            }
            let next = cost + w;
            let entry = &mut dist[inc.neighbor.index()];
            if next < *entry {
                *entry = next;
                prev[inc.neighbor.index()] = Some((node, inc.link));
                scratch.heap.push(HeapEntry {
                    cost: next,
                    node: inc.neighbor,
                });
            }
        }
    }

    Ok(ShortestPaths { source, dist, prev })
}

/// Like [`dijkstra`], but also records a [`DijkstraTrace`] with the label
/// table after each settle step — the paper's Tables 4 and 5.
///
/// # Errors
///
/// Same conditions as [`dijkstra`].
pub fn dijkstra_with_trace(
    topology: &Topology,
    weights: &LinkWeights,
    source: NodeId,
) -> Result<(ShortestPaths, DijkstraTrace), NetError> {
    let mut trace = DijkstraTrace::new(source);
    let (paths, _) = run(topology, weights, source, Some(&mut trace))?;
    Ok((paths, trace))
}

fn run(
    topology: &Topology,
    weights: &LinkWeights,
    source: NodeId,
    mut trace: Option<&mut DijkstraTrace>,
) -> Result<(ShortestPaths, ()), NetError> {
    weights.validate(topology)?;
    topology.try_node(source)?;

    let n = topology.node_count();
    let mut dist: Vec<f64> = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut settled_order = Vec::with_capacity(n);

    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });

    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        settled_order.push(node);

        for inc in topology.adjacent(node) {
            let w = weights.weight(inc.link);
            // Same non-finite masking as `dijkstra_with_scratch` — the
            // two paths must stay bit-identical.
            if !w.is_finite() {
                continue;
            }
            let next = cost + w;
            let entry = &mut dist[inc.neighbor.index()];
            if next < *entry {
                *entry = next;
                prev[inc.neighbor.index()] = Some((node, inc.link));
                heap.push(HeapEntry {
                    cost: next,
                    node: inc.neighbor,
                });
            }
        }

        if let Some(trace) = trace.as_deref_mut() {
            let labels = (0..n)
                .map(|i| {
                    let id = NodeId::new(i as u32);
                    NodeLabel {
                        node: id,
                        dist: dist[i].is_finite().then_some(dist[i]),
                        path: label_path(&prev, source, id, dist[i].is_finite()),
                    }
                })
                .collect();
            trace.push_step(TraceStep {
                settled: settled_order.clone(),
                labels,
            });
        }
    }

    Ok((ShortestPaths { source, dist, prev }, ()))
}

/// Reconstructs the tentative path for the trace table (empty when the
/// node is still unreached — rendered as the paper's "R").
fn label_path(
    prev: &[Option<(NodeId, LinkId)>],
    source: NodeId,
    target: NodeId,
    reached: bool,
) -> Vec<NodeId> {
    if !reached {
        return Vec::new();
    }
    let mut nodes = vec![target];
    let mut cur = target;
    while cur != source {
        match prev[cur.index()] {
            Some((parent, _)) => {
                nodes.push(parent);
                cur = parent;
            }
            None => break,
        }
    }
    nodes.reverse();
    nodes
}

/// Bellman–Ford reference implementation (no trace, O(V·E)); used in tests
/// and benches to cross-validate [`dijkstra`].
///
/// # Errors
///
/// Same validation as [`dijkstra`]; negative weights are rejected for
/// parity even though Bellman–Ford could handle them.
pub fn bellman_ford(
    topology: &Topology,
    weights: &LinkWeights,
    source: NodeId,
) -> Result<Vec<Option<f64>>, NetError> {
    weights.validate(topology)?;
    topology.try_node(source)?;
    let n = topology.node_count();
    let mut dist: Vec<Option<f64>> = vec![None; n];
    dist[source.index()] = Some(0.0);
    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for link in topology.links() {
            let w = weights.weight(link.id());
            if !w.is_finite() {
                continue;
            }
            let (a, b) = link.endpoints();
            if let Some(da) = dist[a.index()] {
                let cand = da + w;
                if dist[b.index()].is_none_or(|d| cand < d) {
                    dist[b.index()] = Some(cand);
                    changed = true;
                }
            }
            if let Some(db) = dist[b.index()] {
                let cand = db + w;
                if dist[a.index()].is_none_or(|d| cand < d) {
                    dist[a.index()] = Some(cand);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use crate::units::Mbps;
    use proptest::prelude::*;

    fn diamond() -> (Topology, [NodeId; 4], [LinkId; 5]) {
        // s - a - t
        //  \  |  /
        //     b
        let mut builder = TopologyBuilder::new();
        let s = builder.add_node("s");
        let a = builder.add_node("a");
        let b = builder.add_node("b");
        let t = builder.add_node("t");
        let sa = builder.add_link(s, a, Mbps::new(1.0)).unwrap();
        let sb = builder.add_link(s, b, Mbps::new(1.0)).unwrap();
        let ab = builder.add_link(a, b, Mbps::new(1.0)).unwrap();
        let at = builder.add_link(a, t, Mbps::new(1.0)).unwrap();
        let bt = builder.add_link(b, t, Mbps::new(1.0)).unwrap();
        (builder.build(), [s, a, b, t], [sa, sb, ab, at, bt])
    }

    #[test]
    fn picks_cheapest_path() {
        let (topo, [s, _a, b, t], [sa, sb, ab, at, bt]) = diamond();
        let mut w = LinkWeights::uniform(5, 1.0);
        w.set_weight(sa, 10.0);
        w.set_weight(sb, 1.0);
        w.set_weight(bt, 1.0);
        w.set_weight(ab, 5.0);
        w.set_weight(at, 5.0);
        let paths = dijkstra(&topo, &w, s).unwrap();
        assert_eq!(paths.distance_to(t), Some(2.0));
        let route = paths.route_to(t).unwrap();
        assert_eq!(route.nodes(), &[s, b, t]);
        assert_eq!(route.links(), &[sb, bt]);
        assert!(route.is_valid_in(&topo));
    }

    #[test]
    fn source_has_zero_distance_and_trivial_route() {
        let (topo, [s, ..], _) = diamond();
        let w = LinkWeights::uniform(5, 1.0);
        let paths = dijkstra(&topo, &w, s).unwrap();
        assert_eq!(paths.distance_to(s), Some(0.0));
        let route = paths.route_to(s).unwrap();
        assert_eq!(route.hops(), 0);
        assert_eq!(paths.source(), s);
    }

    #[test]
    fn unreachable_nodes_have_no_route() {
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        let _z = b.add_node("z"); // isolated
        b.add_link(x, y, Mbps::new(1.0)).unwrap();
        let topo = b.build();
        let paths = dijkstra(&topo, &LinkWeights::uniform(1, 1.0), x).unwrap();
        assert!(paths.is_reachable(y));
        assert!(!paths.is_reachable(NodeId::new(2)));
        assert_eq!(paths.route_to(NodeId::new(2)), None);
        assert_eq!(paths.reachable().count(), 2);
    }

    #[test]
    fn zero_weights_are_allowed() {
        let (topo, [s, _, _, t], _) = diamond();
        let w = LinkWeights::uniform(5, 0.0);
        let paths = dijkstra(&topo, &w, s).unwrap();
        assert_eq!(paths.distance_to(t), Some(0.0));
    }

    #[test]
    fn infinite_weights_mask_links() {
        let (topo, [s, a, b, t], [sa, sb, ab, at, bt]) = diamond();
        let mut w = LinkWeights::uniform(5, 1.0);
        // Down every link into t except via a: the route must detour.
        w.set_weight(sb, f64::INFINITY);
        w.set_weight(bt, f64::INFINITY);
        let paths = dijkstra(&topo, &w, s).unwrap();
        let route = paths.route_to(t).unwrap();
        assert_eq!(route.links(), &[sa, at]);
        assert!(paths.is_reachable(b), "b is still reachable via a");
        assert_eq!(paths.distance_to(b), Some(2.0)); // s-a-b

        // Masking every incident link makes the node unreachable, on
        // all three implementations identically.
        w.set_weight(ab, f64::INFINITY);
        w.set_weight(at, f64::INFINITY);
        let paths = dijkstra(&topo, &w, s).unwrap();
        assert!(!paths.is_reachable(t));
        assert_eq!(paths.distance_to(a), Some(1.0));
        let mut scratch = DijkstraScratch::new();
        let scratch_paths = dijkstra_with_scratch(&topo, &w, s, &mut scratch).unwrap();
        assert_eq!(scratch_paths.distance_to(t), None);
        let bf = bellman_ford(&topo, &w, s).unwrap();
        assert_eq!(bf[t.index()], None);
    }

    #[test]
    fn negative_weights_rejected() {
        let (topo, [s, ..], _) = diamond();
        let w = LinkWeights::uniform(5, -1.0);
        assert!(matches!(
            dijkstra(&topo, &w, s),
            Err(NetError::NegativeWeight(..))
        ));
    }

    #[test]
    fn foreign_source_rejected() {
        let (topo, ..) = diamond();
        let w = LinkWeights::uniform(5, 1.0);
        assert!(matches!(
            dijkstra(&topo, &w, NodeId::new(77)),
            Err(NetError::UnknownNode(..))
        ));
    }

    #[test]
    fn trace_settles_every_reachable_node_once() {
        let (topo, [s, ..], _) = diamond();
        let w = LinkWeights::uniform(5, 1.0);
        let (_, trace) = dijkstra_with_trace(&topo, &w, s).unwrap();
        assert_eq!(trace.steps().len(), 4);
        let last = trace.steps().last().unwrap();
        assert_eq!(last.settled.len(), 4);
        // First settled node is the source.
        assert_eq!(trace.steps()[0].settled, vec![s]);
    }

    #[test]
    fn trace_paths_match_final_routes() {
        let (topo, [s, _, _, t], _) = diamond();
        let w = LinkWeights::uniform(5, 1.0);
        let (paths, trace) = dijkstra_with_trace(&topo, &w, s).unwrap();
        let last = trace.steps().last().unwrap();
        let label = &last.labels[t.index()];
        assert_eq!(label.dist, paths.distance_to(t));
        assert_eq!(label.path, paths.route_to(t).unwrap().nodes().to_vec());
    }

    #[test]
    fn scratch_variant_matches_plain_dijkstra() {
        let (topo, [s, a, b, t], links) = diamond();
        let mut w = LinkWeights::uniform(5, 1.0);
        for (i, l) in links.iter().enumerate() {
            w.set_weight(*l, 0.25 + i as f64 * 0.5);
        }
        let mut scratch = DijkstraScratch::new();
        for src in [s, a, b, t] {
            let plain = dijkstra(&topo, &w, src).unwrap();
            let scratched = dijkstra_with_scratch(&topo, &w, src, &mut scratch).unwrap();
            assert_eq!(plain, scratched);
        }
        // Scratch adapts when reused across topologies of other sizes.
        let mut builder = TopologyBuilder::new();
        let x = builder.add_node("x");
        let y = builder.add_node("y");
        builder.add_link(x, y, Mbps::new(1.0)).unwrap();
        let small = builder.build();
        let w1 = LinkWeights::uniform(1, 2.0);
        let p = dijkstra_with_scratch(&small, &w1, x, &mut scratch).unwrap();
        assert_eq!(p.distance_to(y), Some(2.0));
        assert!(matches!(
            dijkstra_with_scratch(&small, &w1, NodeId::new(9), &mut scratch),
            Err(NetError::UnknownNode(..))
        ));
    }

    #[test]
    fn matches_bellman_ford_on_diamond() {
        let (topo, [s, ..], links) = diamond();
        let mut w = LinkWeights::uniform(5, 1.0);
        for (i, l) in links.iter().enumerate() {
            w.set_weight(*l, 0.3 + i as f64 * 0.7);
        }
        let d = dijkstra(&topo, &w, s).unwrap();
        let bf = bellman_ford(&topo, &w, s).unwrap();
        for id in topo.node_ids() {
            match (d.distance_to(id), bf[id.index()]) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                (None, None) => {}
                other => panic!("reachability mismatch: {other:?}"),
            }
        }
    }

    proptest! {
        /// On random connected-ish graphs, Dijkstra and Bellman–Ford agree
        /// and every returned route is valid with the claimed cost.
        #[test]
        fn agrees_with_bellman_ford(
            n in 2usize..12,
            extra_edges in proptest::collection::vec((0usize..12, 0usize..12, 0.0f64..5.0), 0..30),
            spine in proptest::collection::vec(0.0f64..5.0, 11),
        ) {
            let mut b = TopologyBuilder::new();
            let nodes: Vec<NodeId> = (0..n).map(|i| b.add_node(format!("v{i}"))).collect();
            let mut weights = Vec::new();
            // Spine keeps the graph connected.
            for i in 1..n {
                b.add_link(nodes[i - 1], nodes[i], Mbps::new(1.0)).unwrap();
                weights.push(spine[i - 1]);
            }
            for (a, c, w) in extra_edges {
                let (a, c) = (a % n, c % n);
                if a != c {
                    if let Ok(_l) = b.add_link(nodes[a], nodes[c], Mbps::new(1.0)) {
                        weights.push(w);
                    }
                }
            }
            let topo = b.build();
            let w = LinkWeights::from_vec(weights);
            let src = nodes[0];
            let d = dijkstra(&topo, &w, src).unwrap();
            let bf = bellman_ford(&topo, &w, src).unwrap();
            for id in topo.node_ids() {
                let dd = d.distance_to(id);
                let bd = bf[id.index()];
                prop_assert_eq!(dd.is_some(), bd.is_some());
                if let (Some(x), Some(y)) = (dd, bd) {
                    prop_assert!((x - y).abs() < 1e-9);
                }
                if let Some(route) = d.route_to(id) {
                    prop_assert!(route.is_valid_in(&topo));
                    let sum: f64 = route.links().iter().map(|&l| w.weight(l)).sum();
                    prop_assert!((sum - route.cost()).abs() < 1e-9);
                }
            }
        }

        /// Distances satisfy the triangle inequality over direct links.
        #[test]
        fn settled_distances_respect_link_relaxation(
            seed_weights in proptest::collection::vec(0.0f64..3.0, 6),
        ) {
            let (topo, [s, ..], links) = diamond();
            let mut w = LinkWeights::uniform(5, 1.0);
            for (i, l) in links.iter().enumerate() {
                w.set_weight(*l, seed_weights[i]);
            }
            let d = dijkstra(&topo, &w, s).unwrap();
            for link in topo.links() {
                let (a, b) = link.endpoints();
                if let (Some(da), Some(db)) = (d.distance_to(a), d.distance_to(b)) {
                    let wl = w.weight(link.id());
                    prop_assert!(db <= da + wl + 1e-9);
                    prop_assert!(da <= db + wl + 1e-9);
                }
            }
        }
    }
}
