//! Dynamic single-source shortest-path tree repair.
//!
//! When the traffic snapshot advances by a handful of journaled link
//! mutations, the weight table changes on a few links while every cached
//! [`ShortestPaths`] tree stays *mostly* correct. Instead of dropping the
//! trees and re-running Dijkstra from scratch per home server (the
//! pre-repair behaviour), [`repair_tree`] patches each tree in place with
//! a Ramalingam–Reps-style *detach and re-settle* pass over the CSR
//! adjacency:
//!
//! 1. **Detach**: for every changed link that is a tree edge, cut the
//!    subtree hanging below it (children are discovered through the
//!    adjacency lists — `prev[x] == (v, link)` — so the DFS costs
//!    O(detached · degree), not O(n)) and clear its labels.
//! 2. **Re-settle**: run a bounded Dijkstra seeded with (a) each
//!    detached node's *minimum* intact-boundary offer and (b) improving
//!    offers across the changed links between intact nodes. Intact
//!    labels act as upper bounds; a strict improvement pulls an intact
//!    node into the repair region, so weight *decreases* propagate
//!    exactly as far as they reach. Work is O(affected · log affected),
//!    not O(n log n).
//! 3. **Re-parent**: recompute the *canonical* parent — the argmin of
//!    `(dist[u], u)` over achieving neighbours `u` with
//!    `dist[u] + w == dist[v]` bit-for-bit — over a provably minimal
//!    set: the settled nodes, intact nodes a settled neighbour or
//!    changed link now exactly ties for, and nothing else.
//!
//! # Exactness
//!
//! The repaired tree is **bit-identical** (`==` on [`ShortestPaths`],
//! including parents) to a from-scratch
//! [`dijkstra`](crate::dijkstra::dijkstra) run over the new weight table,
//! provided every finite link weight is strictly positive:
//!
//! * distances are folds of the same f64 additions in the same operand
//!   order, and each repaired label is the minimum of the same candidate
//!   float set the from-scratch run minimises, so the values agree
//!   bit-for-bit;
//! * with strictly positive weights the from-scratch heap pops in
//!   globally sorted `(cost, node-id)` order, which makes its last-writer
//!   `prev` pointer equal the canonical argmin recomputed in step 3. A
//!   zero-weight link breaks that sort (equal-cost entries can enter the
//!   heap *after* pops at the same cost begin), so parents become
//!   discovery-order-dependent and un-repairable — the engine gates
//!   repair on a zero-weight count and falls back to dropping the trees
//!   when any finite weight is exactly `0.0`.
//!
//! The property tests in `tests/tests/engine_vs_reference.rs` pin this
//! equivalence against Dijkstra and Bellman–Ford oracles under random
//! mutation sequences (weight increases/decreases, admin-down/up links,
//! journal overflow).

use std::collections::BinaryHeap;

use crate::dijkstra::{HeapEntry, ShortestPaths};
use crate::ids::{LinkId, NodeId};
use crate::lvn::LinkWeights;
use crate::topology::Topology;

/// Outcome counters of one [`repair_tree`] call, for stats and tests.
#[derive(Debug, Copy, Clone, Default, PartialEq, Eq)]
pub(crate) struct RepairOutcome {
    /// Nodes cut from the tree in the detach phase.
    pub detached: usize,
    /// Nodes (re-)settled by the boundary Dijkstra — detached nodes that
    /// reconnected plus intact nodes pulled in by a strict improvement.
    pub settled: usize,
}

/// Reusable working memory for [`repair_tree`]; owned by the engine and
/// shared across all cached trees so steady-state repair allocates
/// nothing. Masks are reset sparsely (only the bits set by the previous
/// run), keeping a k-link repair at O(affected) even on large graphs.
#[derive(Debug, Default)]
pub(crate) struct RepairScratch {
    heap: BinaryHeap<HeapEntry>,
    /// Mask + list of nodes cut from the tree in phase 1.
    detached: Vec<bool>,
    detached_list: Vec<NodeId>,
    /// Mask + list of nodes settled by the phase-2 boundary Dijkstra.
    settled: Vec<bool>,
    settled_list: Vec<NodeId>,
    /// Mask + list of nodes whose canonical parent phase 3 recomputes.
    reparent: Vec<bool>,
    reparent_list: Vec<NodeId>,
    /// DFS stack for subtree detachment.
    stack: Vec<NodeId>,
    /// Best offer pushed per node so far (lazy decrease-key): a push
    /// that cannot beat an earlier offer to the same node is skipped,
    /// keeping heap traffic at ~one entry per settled node.
    offer: Vec<f64>,
    offer_list: Vec<NodeId>,
}

/// Joins `weights` against the topology's adjacency CSR: `out[i]` is the
/// weight of `adjacency_entries()[i].link`. One O(m) gather per weight
/// epoch turns every per-node scan in [`repair_tree`] into a sequential
/// read instead of a random link-indexed lookup — the repair loops touch
/// each incidence many times per batch (once per cached tree).
pub(crate) fn align_weights(topology: &Topology, weights: &LinkWeights, out: &mut Vec<f64>) {
    out.clear();
    out.extend(
        topology
            .adjacency_entries()
            .iter()
            .map(|inc| weights.weight(inc.link)),
    );
}

impl RepairScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Clears the previous run's marks (sparsely) and sizes masks for a
    /// graph of `n` nodes.
    fn reset(&mut self, n: usize) {
        for &v in &self.detached_list {
            self.detached[v.index()] = false;
        }
        for &v in &self.settled_list {
            self.settled[v.index()] = false;
        }
        for &v in &self.reparent_list {
            self.reparent[v.index()] = false;
        }
        for &v in &self.offer_list {
            self.offer[v.index()] = f64::INFINITY;
        }
        self.detached_list.clear();
        self.settled_list.clear();
        self.reparent_list.clear();
        self.offer_list.clear();
        self.stack.clear();
        self.heap.clear();
        // The sparse unset above covered every set bit (all marking paths
        // push to the lists), so resizing — up or down — keeps the masks
        // all-false and the offers all-infinite.
        self.detached.resize(n, false);
        self.settled.resize(n, false);
        self.reparent.resize(n, false);
        self.offer.resize(n, f64::INFINITY);
    }

    fn mark_reparent(&mut self, v: NodeId) {
        if !self.reparent[v.index()] {
            self.reparent[v.index()] = true;
            self.reparent_list.push(v);
        }
    }

    /// Pushes `cost` for `node` unless an at-least-as-good offer is
    /// already in the heap (offers are always finite, so an infinite
    /// slot means "never offered").
    fn push_offer(&mut self, cost: f64, node: NodeId) {
        let i = node.index();
        if cost < self.offer[i] {
            if self.offer[i].is_infinite() {
                self.offer_list.push(node);
            }
            self.offer[i] = cost;
            self.heap.push(HeapEntry { cost, node });
        }
    }
}

/// Repairs `tree` in place so it equals a from-scratch Dijkstra run over
/// `weights`, given that only the links in `changed` differ (by value)
/// from the table the tree was last exact for.
///
/// Caller contract (enforced by the engine, asserted in debug builds):
/// every finite weight in `weights` is strictly positive, and the tree
/// was exact — built by from-scratch Dijkstra or a previous repair — for
/// the previous table, which was also strictly positive.
pub(crate) fn repair_tree(
    topology: &Topology,
    weights: &LinkWeights,
    adj_weights: &[f64],
    changed: &[LinkId],
    tree: &mut ShortestPaths,
    scratch: &mut RepairScratch,
) -> RepairOutcome {
    debug_assert_eq!(adj_weights.len(), topology.adjacency_entries().len());
    let n = topology.node_count();
    let source = tree.source();
    scratch.reset(n);

    // Phase 1: find changed tree edges and detach the subtrees below
    // them. Roots are collected before any label is cleared — the root
    // test reads `prev`, which the DFS below mutates.
    for &link in changed {
        let l = topology.link(link);
        let (a, b) = (l.a(), l.b());
        if tree.parent(b) == Some((a, link)) {
            scratch.stack.push(b);
        } else if tree.parent(a) == Some((b, link)) {
            scratch.stack.push(a);
        }
    }
    let (dist, prev) = tree.labels_mut();
    // Tree children of v are exactly the neighbours x with
    // `prev[x] == (v, link)`, so the DFS discovers each subtree through
    // the adjacency lists in O(detached · degree) — no O(n) children
    // index. A child's `prev` is still intact when its parent scans for
    // it (labels are cleared only when the child itself pops).
    while let Some(v) = scratch.stack.pop() {
        let vi = v.index();
        if scratch.detached[vi] {
            continue;
        }
        scratch.detached[vi] = true;
        scratch.detached_list.push(v);
        dist[vi] = f64::INFINITY;
        prev[vi] = None;
        for inc in topology.adjacent(v) {
            let xi = inc.neighbor.index();
            if !scratch.detached[xi] && prev[xi] == Some((v, inc.link)) {
                scratch.stack.push(inc.neighbor);
            }
        }
    }

    // Phase 2: boundary Dijkstra. Seed each detached node with its best
    // intact-boundary offer (one heap entry per node — Dijkstra from a
    // super-source over the boundary edges, with relaxation covering
    // paths that run through other detached nodes), plus any *improving*
    // offer across a changed link between intact nodes (a decrease can
    // improve intact nodes far from any detached subtree; offers into
    // detached nodes are already covered by the min-seeds, which read
    // the same patched weights). Intact labels are valid upper bounds —
    // their tree paths avoid the detached region and changed tree edges
    // by construction — so only strict improvements (or any finite offer
    // into a detached node) settle.
    for i in 0..scratch.detached_list.len() {
        let v = scratch.detached_list[i];
        // Branchless min: detached neighbours carry the `INFINITY`
        // sentinel (cleared above) and masked links have infinite
        // weight, so both kinds of non-offer drop out of the fold.
        let mut best = f64::INFINITY;
        let r = topology.adjacency_range(v);
        for (inc, &w) in topology.adjacency_entries()[r.clone()]
            .iter()
            .zip(&adj_weights[r])
        {
            best = best.min(dist[inc.neighbor.index()] + w);
        }
        if best.is_finite() {
            scratch.push_offer(best, v);
        }
    }
    for &link in changed {
        let w = weights.weight(link);
        if !w.is_finite() {
            continue;
        }
        let l = topology.link(link);
        for (from, to) in [(l.a(), l.b()), (l.b(), l.a())] {
            if scratch.detached[from.index()] || scratch.detached[to.index()] {
                continue; // covered by the min-seeds above
            }
            let cost = dist[from.index()] + w;
            if cost < dist[to.index()] {
                scratch.push_offer(cost, to);
            }
        }
    }
    while let Some(HeapEntry { cost, node: v }) = scratch.heap.pop() {
        let vi = v.index();
        if scratch.settled[vi] {
            continue;
        }
        // Detached nodes carry the sentinel, so one comparison covers
        // both "first offer into the detached region" and "strict
        // improvement of an intact label".
        if cost >= dist[vi] {
            continue;
        }
        scratch.settled[vi] = true;
        scratch.settled_list.push(v);
        dist[vi] = cost;
        // One scan does both the relaxation and the canonical re-parent:
        // `cost` is v's final label (Dijkstra invariant), and every
        // achieving neighbour u (du + w == cost, hence du < cost) has
        // settled already — or was never touched — so its label is final
        // too, and the argmin computed here equals a post-hoc recompute.
        let mut best: Option<(f64, NodeId, LinkId)> = None;
        let r = topology.adjacency_range(v);
        for (inc, &w) in topology.adjacency_entries()[r.clone()]
            .iter()
            .zip(&adj_weights[r])
        {
            if !w.is_finite() {
                continue;
            }
            let ui = inc.neighbor.index();
            let du = dist[ui];
            if (du + w).to_bits() == cost.to_bits() {
                let better = match best {
                    None => true,
                    Some((bd, bn, _)) => match du.total_cmp(&bd) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => inc.neighbor < bn,
                        std::cmp::Ordering::Greater => false,
                    },
                };
                if better {
                    best = Some((du, inc.neighbor, inc.link));
                }
            }
            if scratch.settled[ui] {
                continue;
            }
            let next = cost + w;
            if next < du {
                scratch.push_offer(next, inc.neighbor);
            } else if next.to_bits() == du.to_bits() && !scratch.detached[ui] {
                // v is now an exact-tie candidate parent for its intact
                // neighbour — the tie-break may shift; recompute it.
                scratch.mark_reparent(inc.neighbor);
            }
        }
        debug_assert!(best.is_some(), "settled node {v:?} has no achieving parent");
        prev[vi] = best.map(|(_, u, l)| (u, l));
    }

    // Phase 3: canonical re-parenting of the few *intact* nodes whose
    // tie-break may have shifted — neighbours a settled node now exactly
    // ties for (marked in the settle scan above) and intact endpoints a
    // changed link now exactly ties for (marked below). Settled nodes
    // were re-parented inline as they popped. Every other node x keeps
    // its parent: its candidate list `(dist[u] + w, u)` changed only in
    // entries that were and remain strict losers — a candidate dropping
    // to `< dist[x]` would have settled x in phase 2, one landing
    // exactly on `dist[x]` is marked, and a detached node that stayed
    // unreachable cannot have been any intact node's parent (children
    // of a detached node were detached with it).
    for &link in changed {
        let w = weights.weight(link);
        if !w.is_finite() {
            continue;
        }
        let l = topology.link(link);
        for (x, u) in [(l.a(), l.b()), (l.b(), l.a())] {
            let xi = x.index();
            if scratch.reparent[xi] || scratch.settled[xi] || scratch.detached[xi] {
                continue;
            }
            let dx = dist[xi];
            if dx.is_finite() && (dist[u.index()] + w).to_bits() == dx.to_bits() {
                scratch.mark_reparent(x);
            }
        }
    }
    for &v in &scratch.reparent_list {
        let vi = v.index();
        if v == source {
            prev[vi] = None;
            continue;
        }
        let dv = dist[vi];
        if !dv.is_finite() {
            prev[vi] = None;
            continue;
        }
        let mut best: Option<(f64, NodeId, LinkId)> = None;
        let r = topology.adjacency_range(v);
        for (inc, &w) in topology.adjacency_entries()[r.clone()]
            .iter()
            .zip(&adj_weights[r])
        {
            let du = dist[inc.neighbor.index()];
            // Bitwise achievement test: dv is itself the min over these
            // very sums, so at least one candidate matches exactly (an
            // infinite label or masked link yields an infinite sum,
            // which never matches the finite dv).
            if (du + w).to_bits() != dv.to_bits() {
                continue;
            }
            let better = match best {
                None => true,
                Some((bd, bn, _)) => match du.total_cmp(&bd) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => inc.neighbor < bn,
                    std::cmp::Ordering::Greater => false,
                },
            };
            if better {
                best = Some((du, inc.neighbor, inc.link));
            }
        }
        debug_assert!(
            best.is_some(),
            "reachable non-source node {v:?} has no achieving parent"
        );
        prev[vi] = best.map(|(_, u, l)| (u, l));
    }

    RepairOutcome {
        detached: scratch.detached_list.len(),
        settled: scratch.settled_list.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::topology::TopologyBuilder;
    use crate::units::Mbps;

    /// 6-node mesh with enough redundancy for detours.
    fn mesh() -> (Topology, Vec<NodeId>, Vec<LinkId>) {
        let mut b = TopologyBuilder::new();
        let n: Vec<NodeId> = (0..6).map(|i| b.add_node(format!("n{i}"))).collect();
        let mut links = Vec::new();
        for i in 1..6 {
            links.push(b.add_link(n[i - 1], n[i], Mbps::new(1.0)).unwrap());
        }
        links.push(b.add_link(n[0], n[2], Mbps::new(1.0)).unwrap());
        links.push(b.add_link(n[1], n[4], Mbps::new(1.0)).unwrap());
        links.push(b.add_link(n[0], n[5], Mbps::new(1.0)).unwrap());
        (b.build(), n, links)
    }

    fn check_repair(weights_before: &[f64], weights_after: &[f64]) {
        let (topo, nodes, links) = mesh();
        let before = LinkWeights::from_vec(weights_before.to_vec());
        let after = LinkWeights::from_vec(weights_after.to_vec());
        let changed: Vec<LinkId> = links
            .iter()
            .copied()
            .filter(|&l| before.weight(l).to_bits() != after.weight(l).to_bits())
            .collect();
        let mut scratch = RepairScratch::new();
        let mut aw = Vec::new();
        align_weights(&topo, &after, &mut aw);
        for &src in &nodes {
            let mut tree = dijkstra(&topo, &before, src).unwrap();
            repair_tree(&topo, &after, &aw, &changed, &mut tree, &mut scratch);
            let oracle = dijkstra(&topo, &after, src).unwrap();
            assert_eq!(tree, oracle, "src={src:?} changed={changed:?}");
        }
    }

    #[test]
    fn weight_increase_reroutes_subtree() {
        let before = [0.5, 0.5, 0.5, 0.5, 0.5, 0.7, 0.7, 0.7];
        let mut after = before;
        after[1] = 5.0;
        check_repair(&before, &after);
    }

    #[test]
    fn weight_decrease_pulls_in_intact_nodes() {
        let before = [0.5, 0.5, 0.5, 0.5, 0.5, 0.7, 0.7, 0.7];
        let mut after = before;
        after[6] = 0.01; // n1–n4 shortcut far from most sources' subtrees
        check_repair(&before, &after);
    }

    #[test]
    fn admin_down_and_up_round_trip() {
        let base = [0.5, 0.5, 0.5, 0.5, 0.5, 0.7, 0.7, 0.7];
        let mut down = base;
        down[2] = f64::INFINITY;
        check_repair(&base, &down);
        check_repair(&down, &base);
    }

    #[test]
    fn disconnection_leaves_unreachable_labels_cleared() {
        // Sever every way out of n5: links 4 (n4–n5) and 7 (n0–n5).
        let base = [0.5, 0.5, 0.5, 0.5, 0.5, 0.7, 0.7, 0.7];
        let mut cut = base;
        cut[4] = f64::INFINITY;
        cut[7] = f64::INFINITY;
        check_repair(&base, &cut);
        check_repair(&cut, &base);
    }

    #[test]
    fn multi_link_batches_repair_exactly() {
        let before = [0.5, 1.5, 0.25, 0.75, 0.5, 0.7, 1.1, 0.3];
        let after = [2.5, 0.1, 0.25, 0.75, 3.0, 0.7, 0.05, 0.3];
        check_repair(&before, &after);
    }

    #[test]
    fn empty_change_set_is_a_no_op() {
        let base = [0.5, 1.5, 0.25, 0.75, 0.5, 0.7, 1.1, 0.3];
        check_repair(&base, &base);
    }

    #[test]
    fn scratch_reuse_across_topology_sizes() {
        let mut scratch = RepairScratch::new();
        // Large graph first…
        let (topo, nodes, links) = mesh();
        let before = LinkWeights::uniform(links.len(), 1.0);
        let mut after = before.clone();
        after.set_weight(links[0], 3.0);
        let mut tree = dijkstra(&topo, &before, nodes[0]).unwrap();
        let mut aw = Vec::new();
        align_weights(&topo, &after, &mut aw);
        repair_tree(&topo, &after, &aw, &[links[0]], &mut tree, &mut scratch);
        assert_eq!(tree, dijkstra(&topo, &after, nodes[0]).unwrap());
        // …then a smaller one: masks must not leak stale marks.
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        let l = b.add_link(x, y, Mbps::new(1.0)).unwrap();
        let small = b.build();
        let wb = LinkWeights::uniform(1, 2.0);
        let mut wa = wb.clone();
        wa.set_weight(l, 0.5);
        let mut tree = dijkstra(&small, &wb, x).unwrap();
        align_weights(&small, &wa, &mut aw);
        repair_tree(&small, &wa, &aw, &[l], &mut tree, &mut scratch);
        assert_eq!(tree, dijkstra(&small, &wa, x).unwrap());
    }
}
