//! Strongly-typed identifiers for topology elements.
//!
//! Nodes and links are stored densely inside a [`Topology`](crate::Topology)
//! and addressed by index; the [`NodeId`] and [`LinkId`] newtypes keep the
//! two index spaces from being confused (C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node within a [`Topology`](crate::Topology).
///
/// A `NodeId` is only meaningful for the topology that issued it (via
/// [`TopologyBuilder::add_node`](crate::TopologyBuilder::add_node)).
///
/// # Examples
///
/// ```
/// use vod_net::NodeId;
///
/// let id = NodeId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "n3");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw dense index.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Returns the dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// Identifier of a link within a [`Topology`](crate::Topology).
///
/// # Examples
///
/// ```
/// use vod_net::LinkId;
///
/// let id = LinkId::new(0);
/// assert_eq!(id.index(), 0);
/// assert_eq!(id.to_string(), "l0");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct LinkId(u32);

impl LinkId {
    /// Creates a link id from a raw dense index.
    pub const fn new(raw: u32) -> Self {
        LinkId(raw)
    }

    /// Returns the dense index of this link.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<LinkId> for usize {
    fn from(id: LinkId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_round_trips_index() {
        for raw in [0u32, 1, 17, u32::MAX] {
            assert_eq!(NodeId::new(raw).index(), raw as usize);
        }
    }

    #[test]
    fn link_id_round_trips_index() {
        for raw in [0u32, 1, 17, u32::MAX] {
            assert_eq!(LinkId::new(raw).index(), raw as usize);
        }
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(LinkId::new(0) < LinkId::new(9));
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<NodeId> = (0..10).map(NodeId::new).collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::new(42).to_string(), "n42");
        assert_eq!(LinkId::new(7).to_string(), "l7");
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&NodeId::new(5)).unwrap();
        assert_eq!(json, "5");
        let back: NodeId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, NodeId::new(5));
    }
}
