//! The epoch-cached routing engine — the per-request hot path of the VRA.
//!
//! [`LvnComputer`](crate::lvn::LvnComputer) and
//! [`dijkstra_with_trace`](crate::dijkstra::dijkstra_with_trace) recompute
//! everything from scratch on every call; that is the right shape for
//! reproducing the paper's tables, but a service answering a stream of
//! video requests recomputes identical state over and over: the traffic
//! snapshot only changes every 1–2 minutes (the paper's SNMP poll
//! interval), while requests arrive continuously.
//!
//! [`RoutingEngine`] memoizes every derived artefact and keys the cache on
//! the snapshot's [`SnapshotEpoch`]:
//!
//! * **node validations and link weights** are cached per epoch; when the
//!   snapshot advances by `k` journaled link mutations, only the ≤ `2k`
//!   nodes adjacent to those links have their NV re-derived (and only the
//!   links incident to them re-weighted) — bit-identical to a full
//!   recompute because each NV is re-summed in the same adjacency order;
//! * **shortest-path trees** are cached per home server in an
//!   [`Arc<ShortestPaths>`] and survive epoch changes: a small journaled
//!   mutation *repairs* every cached tree in place (dynamic SSSP,
//!   `crate::sssp`) instead of dropping them, so the warm path after a
//!   traffic update re-settles only the affected subtrees;
//! * cold Dijkstra runs reuse a [`DijkstraScratch`], so the steady state
//!   allocates nothing beyond the cached trees themselves.
//!
//! [`RoutingEngine::select_batch`] additionally fans independent Dijkstra
//! runs for distinct home servers out over a persistent worker pool
//! (`crate::pool`, feature `parallel`, on by default) owned by the
//! engine — jobs are channel-fed home partitions and results are
//! reassembled by request index, so the outcome is deterministic and
//! identical to the sequential path.
//!
//! The engine's results are bit-identical to the slow reference path —
//! the property test `engine_vs_reference` and the unit tests below pin
//! this against [`LvnComputer`](crate::lvn::LvnComputer) +
//! [`dijkstra`](crate::dijkstra::dijkstra).
//!
//! # Examples
//!
//! ```
//! use vod_net::engine::RoutingEngine;
//! use vod_net::lvn::LvnParams;
//! use vod_net::topologies::grnet::{Grnet, GrnetNode, TimeOfDay};
//!
//! # fn main() -> Result<(), vod_net::NetError> {
//! let grnet = Grnet::new();
//! let snapshot = grnet.snapshot(TimeOfDay::T1000);
//! let mut engine = RoutingEngine::new(LvnParams::default());
//! let home = grnet.node(GrnetNode::Patra);
//! let candidates = [grnet.node(GrnetNode::Thessaloniki), grnet.node(GrnetNode::Xanthi)];
//!
//! let first = engine.select(grnet.topology(), &snapshot, home, &candidates)?.unwrap();
//! assert_eq!(first.server, grnet.node(GrnetNode::Thessaloniki));
//!
//! // Same epoch, same home: served entirely from cache.
//! let again = engine.select(grnet.topology(), &snapshot, home, &candidates)?.unwrap();
//! assert_eq!(again.server, first.server);
//! assert_eq!(engine.stats().dijkstra_runs, 1);
//! assert_eq!(engine.stats().path_cache_hits, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::dijkstra::{dijkstra_with_scratch, DijkstraScratch, ShortestPaths};
use crate::error::NetError;
use crate::ids::{LinkId, NodeId};
use crate::lvn::{LinkWeights, LvnParams};
#[cfg(feature = "parallel")]
use crate::pool::WorkerPool;
use crate::route::Route;
use crate::snapshot::{SnapshotEpoch, TrafficSnapshot};
use crate::sssp::{align_weights, repair_tree, RepairScratch};
use crate::topology::Topology;
use crate::units::Mbps;

/// Identity of a [`Topology`] instance, used to detect cache invalidation
/// across topology swaps. The engine compares the *instance* (address +
/// dimensions), so callers must keep one `Topology` value alive across the
/// calls that should share cached state — which is the natural shape of a
/// long-running service anyway.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
struct TopologyKey {
    addr: usize,
    nodes: usize,
    links: usize,
}

impl TopologyKey {
    fn of(topology: &Topology) -> Self {
        TopologyKey {
            addr: topology as *const Topology as usize,
            nodes: topology.node_count(),
            links: topology.link_count(),
        }
    }
}

/// Counters describing how the engine answered its requests so far.
///
/// Useful for tests ("the warm path must not run Dijkstra") and for
/// operational visibility; see [`RoutingEngine::stats`].
#[derive(Debug, Copy, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Total [`RoutingEngine::select`] calls (batch requests included).
    pub requests: u64,
    /// Requests answered by the home server itself (the VRA's "IF the
    /// adjacent video server can provide the requested video" short
    /// circuit) — no weights, no Dijkstra.
    pub local_hits: u64,
    /// Calls that found the weight cache already at the snapshot's epoch.
    pub weight_cache_hits: u64,
    /// Weight tables rebuilt from scratch (cold cache, topology change,
    /// snapshot instance change, or journal overflow).
    pub full_rebuilds: u64,
    /// Weight tables patched incrementally from the snapshot's mutation
    /// journal.
    pub incremental_rebuilds: u64,
    /// Dijkstra executions (cache misses on the shortest-path cache).
    pub dijkstra_runs: u64,
    /// Requests answered from a cached shortest-path tree.
    pub path_cache_hits: u64,
    /// Incremental `prepare` calls that repaired the cached trees in
    /// place (dynamic SSSP) instead of dropping them.
    pub tree_repairs: u64,
    /// Total shortest-path trees repaired across all those calls.
    pub trees_repaired: u64,
    /// Batches whose Dijkstra fan-out ran on the persistent worker pool.
    pub pool_batches: u64,
}

/// The outcome of one engine selection: the chosen server and the
/// least-cost route to it.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSelection {
    /// The selected video server.
    pub server: NodeId,
    /// The least-cost route from the home server to [`Self::server`]
    /// (trivial when served locally).
    pub route: Route,
    /// True when the home server itself held the title and the request
    /// never reached the routing stage.
    pub served_locally: bool,
}

/// One request of a [`RoutingEngine::select_batch`] call.
#[derive(Debug, Copy, Clone)]
pub struct BatchRequest<'a> {
    /// The client's home (directly connected) server.
    pub home: NodeId,
    /// The servers holding the requested title.
    pub candidates: &'a [NodeId],
}

/// Cached state derived from one (topology, snapshot-epoch) pair.
#[derive(Debug, Clone)]
struct EngineCache {
    key: TopologyKey,
    epoch: SnapshotEpoch,
    /// Per-node NV values (equation (2)), in node-id order.
    nv: Vec<f64>,
    /// Per-link LVN weights (equation (1)), in link-id order. Behind an
    /// `Arc` so pool workers can share the table without copying it;
    /// mutation goes through [`Arc::make_mut`], which is a plain
    /// dereference while no batch is in flight (the common case).
    weights: Arc<LinkWeights>,
    /// Number of links whose weight is exactly `0.0`. Dynamic tree
    /// repair requires every finite weight to be strictly positive (see
    /// [`crate::sssp`]); while this is non-zero an epoch change drops
    /// the cached trees instead of repairing them.
    zero_weights: usize,
    /// Shortest-path trees at this epoch, keyed by home server —
    /// built from scratch on demand, then *repaired* across epochs.
    paths: HashMap<NodeId, Arc<ShortestPaths>>,
}

/// Epoch-cached implementation of the paper's Virtual Routing Algorithm
/// hot path. See the [module docs](self) for the caching model.
#[derive(Debug)]
pub struct RoutingEngine {
    params: LvnParams,
    cache: Option<EngineCache>,
    scratch: DijkstraScratch,
    /// Working memory for dynamic tree repair, shared across all trees.
    repair: RepairScratch,
    /// Reused dirty-link buffer for `prepare` (journal drain).
    dirty_scratch: Vec<LinkId>,
    /// Links whose weight *value* changed in the last incremental patch.
    changed_scratch: Vec<LinkId>,
    /// Per-epoch adjacency-aligned weight gather: `aligned_scratch[i]` is
    /// the weight of `adjacency_entries()[i].link`, so tree repair reads
    /// weights sequentially instead of through a link-indexed lookup.
    aligned_scratch: Vec<f64>,
    /// Explicit batch worker count; `None` = automatic policy (clamp to
    /// hardware and batch size). See [`RoutingEngine::set_batch_workers`].
    batch_workers: Option<usize>,
    /// The topology shared with pool workers, keyed so a swap
    /// invalidates it; cloned at most once per distinct topology.
    #[cfg(feature = "parallel")]
    shared_topology: Option<(TopologyKey, Arc<Topology>)>,
    /// Lazily-spawned persistent Dijkstra worker pool.
    #[cfg(feature = "parallel")]
    pool: Option<WorkerPool>,
    stats: EngineStats,
}

impl Default for RoutingEngine {
    fn default() -> Self {
        RoutingEngine::new(LvnParams::default())
    }
}

impl Clone for RoutingEngine {
    fn clone(&self) -> Self {
        RoutingEngine {
            params: self.params,
            cache: self.cache.clone(),
            // Scratch buffers are cheap to regrow; don't clone the heap.
            // The worker pool is per-engine (lazily respawned) and the
            // shared-topology Arc is re-derived on first parallel batch.
            scratch: DijkstraScratch::new(),
            repair: RepairScratch::new(),
            dirty_scratch: Vec::new(),
            changed_scratch: Vec::new(),
            aligned_scratch: Vec::new(),
            batch_workers: self.batch_workers,
            #[cfg(feature = "parallel")]
            shared_topology: self.shared_topology.clone(),
            #[cfg(feature = "parallel")]
            pool: None,
            stats: self.stats,
        }
    }
}

impl RoutingEngine {
    /// Creates an engine with the given LVN parameters and a cold cache.
    pub fn new(params: LvnParams) -> Self {
        RoutingEngine {
            params,
            cache: None,
            scratch: DijkstraScratch::new(),
            repair: RepairScratch::new(),
            dirty_scratch: Vec::new(),
            changed_scratch: Vec::new(),
            aligned_scratch: Vec::new(),
            batch_workers: None,
            #[cfg(feature = "parallel")]
            shared_topology: None,
            #[cfg(feature = "parallel")]
            pool: None,
            stats: EngineStats::default(),
        }
    }

    /// The LVN parameters in use.
    pub fn params(&self) -> LvnParams {
        self.params
    }

    /// Counters of cache hits, rebuilds and Dijkstra runs so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Resets the statistics counters (the cache is kept).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Drops all cached state; the next call rebuilds from scratch.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }

    /// Overrides the batch worker count used by
    /// [`RoutingEngine::select_batch`].
    ///
    /// `None` (the default) applies the automatic policy: clamp the
    /// requested count to the machine's available parallelism and to one
    /// worker per [`POOL_HOMES_PER_WORKER`] uncached homes. `Some(n)`
    /// bypasses both clamps and dispatches `n` workers (capped at the
    /// number of uncached homes) whenever a batch has ≥ 2 homes to
    /// solve — the knob tests use to exercise the pool on hosts whose
    /// hardware parallelism would otherwise force the sequential path,
    /// and operators use to pin routing threads.
    pub fn set_batch_workers(&mut self, workers: Option<usize>) {
        self.batch_workers = workers;
    }

    /// The explicit batch worker override, if any.
    pub fn batch_workers(&self) -> Option<usize> {
        self.batch_workers
    }

    /// Ensures the weight cache matches `snapshot`'s current epoch,
    /// rebuilding as little as possible.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::WeightCountMismatch`] when the snapshot does
    /// not cover `topology`'s links.
    pub fn prepare(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
    ) -> Result<(), NetError> {
        snapshot.check_matches(topology)?;
        let key = TopologyKey::of(topology);
        let epoch = snapshot.epoch();

        if let Some(cache) = self.cache.as_mut() {
            if cache.key == key {
                if cache.epoch == epoch {
                    self.stats.weight_cache_hits += 1;
                    return Ok(());
                }
                let in_window = snapshot.collect_dirty_into(cache.epoch, &mut self.dirty_scratch);
                // Patching beats a full pass only while the affected
                // neighbourhood is small relative to the graph; journal
                // overflow (`!in_window`) always falls back to a full
                // rebuild, which also drops the cached trees.
                if in_window && 2 * self.dirty_scratch.len() < topology.node_count().max(1) {
                    let zero_before = cache.zero_weights;
                    patch_cache(
                        cache,
                        topology,
                        snapshot,
                        self.params,
                        &self.dirty_scratch,
                        &mut self.changed_scratch,
                    );
                    cache.epoch = epoch;
                    self.stats.incremental_rebuilds += 1;
                    if self.changed_scratch.is_empty() {
                        // Every mutation cancelled out: the weight table
                        // is bit-identical, so every cached tree is
                        // still exact as-is.
                    } else if zero_before == 0 && cache.zero_weights == 0 {
                        // Dynamic SSSP: repair every cached tree in
                        // place. Strict positivity held before and after
                        // the patch, so the canonical-parent invariant
                        // repair relies on is intact (crate::sssp docs).
                        let weights = Arc::clone(&cache.weights);
                        align_weights(topology, &weights, &mut self.aligned_scratch);
                        let mut repaired = 0u64;
                        for tree in cache.paths.values_mut() {
                            repair_tree(
                                topology,
                                &weights,
                                &self.aligned_scratch,
                                &self.changed_scratch,
                                Arc::make_mut(tree),
                                &mut self.repair,
                            );
                            repaired += 1;
                        }
                        if repaired > 0 {
                            self.stats.tree_repairs += 1;
                            self.stats.trees_repaired += repaired;
                        }
                    } else {
                        // A zero weight (fully idle link on an idle
                        // neighbourhood) makes from-scratch parents
                        // discovery-order-dependent; repair cannot
                        // reproduce them bit-for-bit, so fall back to
                        // the old behaviour and rebuild trees lazily.
                        cache.paths.clear();
                    }
                    return Ok(());
                }
            }
        }

        self.rebuild_full(topology, snapshot, key, epoch);
        Ok(())
    }

    /// The cached per-link weight table for `snapshot`'s current epoch —
    /// bit-identical to
    /// [`LvnComputer::weights`](crate::lvn::LvnComputer::weights).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoutingEngine::prepare`].
    pub fn weights(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
    ) -> Result<&LinkWeights, NetError> {
        self.prepare(topology, snapshot)?;
        Ok(self
            .cache
            .as_ref()
            .expect("prepare populates the cache")
            .weights
            .as_ref())
    }

    /// The shortest-path tree from `home` at `snapshot`'s current epoch,
    /// computed at most once per (epoch, home) pair.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoutingEngine::prepare`], plus
    /// [`NetError::UnknownNode`] for a foreign `home`.
    pub fn paths_from(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
        home: NodeId,
    ) -> Result<Arc<ShortestPaths>, NetError> {
        self.prepare(topology, snapshot)?;
        topology.try_node(home)?;
        let cache = self.cache.as_mut().expect("prepare populates the cache");
        if let Some(paths) = cache.paths.get(&home) {
            self.stats.path_cache_hits += 1;
            return Ok(Arc::clone(paths));
        }
        let paths = Arc::new(dijkstra_with_scratch(
            topology,
            &cache.weights,
            home,
            &mut self.scratch,
        )?);
        self.stats.dijkstra_runs += 1;
        cache.paths.insert(home, Arc::clone(&paths));
        Ok(paths)
    }

    /// Runs the VRA selection for one request: local short circuit, then
    /// cheapest candidate by (cost, node id) over the cached tree.
    /// Returns `None` when no candidate is reachable (including an empty
    /// candidate list) — identical decisions, costs and tie-breaks to the
    /// trace-producing slow path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoutingEngine::paths_from`].
    ///
    /// # Panics
    ///
    /// Panics if a candidate id is out of range for `topology`.
    pub fn select(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
        home: NodeId,
        candidates: &[NodeId],
    ) -> Result<Option<EngineSelection>, NetError> {
        self.stats.requests += 1;
        if candidates.contains(&home) {
            self.stats.local_hits += 1;
            return Ok(Some(local_selection(home)));
        }
        let paths = self.paths_from(topology, snapshot, home)?;
        Ok(pick_candidate(&paths, candidates))
    }

    /// Answers a batch of requests against one prepared epoch, running
    /// Dijkstra for the distinct uncached home servers in parallel on
    /// the engine's persistent worker pool (feature `parallel`;
    /// sequential otherwise). By default one worker per available CPU,
    /// capped at one worker per [`POOL_HOMES_PER_WORKER`] uncached
    /// homes, so small batches take the sequential path; see
    /// [`RoutingEngine::set_batch_workers`] to override the policy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoutingEngine::select`].
    pub fn select_batch(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
        requests: &[BatchRequest<'_>],
    ) -> Result<Vec<Option<EngineSelection>>, NetError> {
        self.select_batch_with_threads(topology, snapshot, requests, hardware_parallelism())
    }

    /// [`RoutingEngine::select_batch`] with an explicit worker count.
    /// Under the default policy the count is an upper bound, not a
    /// demand: it is clamped to the machine's available parallelism and
    /// to roughly one worker per [`POOL_HOMES_PER_WORKER`] uncached
    /// homes, so small batches always take the sequential path
    /// regardless of the requested concurrency (`1` forces it
    /// unconditionally). An explicit [`RoutingEngine::set_batch_workers`]
    /// override takes precedence over both `threads` and the clamps.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoutingEngine::select`].
    pub fn select_batch_with_threads(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
        requests: &[BatchRequest<'_>],
        threads: usize,
    ) -> Result<Vec<Option<EngineSelection>>, NetError> {
        self.prepare(topology, snapshot)?;

        // Distinct home servers that actually need a Dijkstra run.
        let mut homes: Vec<NodeId> = requests
            .iter()
            .filter(|r| !r.candidates.contains(&r.home))
            .map(|r| r.home)
            .collect();
        homes.sort_unstable();
        homes.dedup();
        for &home in &homes {
            topology.try_node(home)?;
        }
        {
            let cache = self.cache.as_ref().expect("prepare populates the cache");
            homes.retain(|h| !cache.paths.contains_key(h));
        }

        let workers = self.plan_workers(homes.len(), threads);
        let solved = if workers > 1 {
            self.solve_homes_pooled(topology, homes.clone(), workers)?
        } else {
            let cache = self.cache.as_ref().expect("prepare populates the cache");
            let mut out = Vec::with_capacity(homes.len());
            for &home in &homes {
                out.push(dijkstra_with_scratch(
                    topology,
                    &cache.weights,
                    home,
                    &mut self.scratch,
                )?);
            }
            out
        };
        self.stats.dijkstra_runs += homes.len() as u64;
        let cache = self.cache.as_mut().expect("prepare populates the cache");
        for (home, paths) in homes.into_iter().zip(solved) {
            cache.paths.insert(home, Arc::new(paths));
        }

        Ok(requests
            .iter()
            .map(|r| {
                self.stats.requests += 1;
                if r.candidates.contains(&r.home) {
                    self.stats.local_hits += 1;
                    return Some(local_selection(r.home));
                }
                self.stats.path_cache_hits += 1;
                let paths = &cache.paths[&r.home];
                pick_candidate(paths, r.candidates)
            })
            .collect())
    }

    /// Resolves the effective worker count for a batch with `uncached`
    /// homes to solve: 1 (sequential) unless the `parallel` feature is
    /// on and either the automatic policy or an explicit
    /// [`RoutingEngine::set_batch_workers`] override asks for more.
    fn plan_workers(&self, uncached: usize, requested: usize) -> usize {
        if cfg!(not(feature = "parallel")) || uncached < 2 {
            return 1;
        }
        match self.batch_workers {
            Some(n) => n.clamp(1, uncached),
            None => requested
                .min(hardware_parallelism())
                .min(uncached.div_ceil(POOL_HOMES_PER_WORKER))
                .max(1),
        }
    }

    /// Fans the uncached homes out over the persistent worker pool and
    /// reassembles the trees in home order. Slots lost to a dead worker
    /// (a panicked sibling cannot poison the job queue, but belt and
    /// braces) are solved inline, so the result — including which error
    /// surfaces first — is identical to the sequential path.
    #[cfg(feature = "parallel")]
    fn solve_homes_pooled(
        &mut self,
        topology: &Topology,
        homes: Vec<NodeId>,
        workers: usize,
    ) -> Result<Vec<ShortestPaths>, NetError> {
        let key = TopologyKey::of(topology);
        let shared = match &self.shared_topology {
            Some((k, arc)) if *k == key => Arc::clone(arc),
            _ => {
                let arc = Arc::new(topology.clone());
                self.shared_topology = Some((key, Arc::clone(&arc)));
                arc
            }
        };
        let weights = {
            let cache = self.cache.as_ref().expect("prepare populates the cache");
            Arc::clone(&cache.weights)
        };
        let homes = Arc::new(homes);
        let pool = self.pool.get_or_insert_with(WorkerPool::new);
        let slots = pool.solve(&shared, &weights, &homes, workers);
        self.stats.pool_batches += 1;
        let mut out = Vec::with_capacity(homes.len());
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(solved) => out.push(solved?),
                None => out.push(dijkstra_with_scratch(
                    topology,
                    &weights,
                    homes[i],
                    &mut self.scratch,
                )?),
            }
        }
        Ok(out)
    }

    #[cfg(not(feature = "parallel"))]
    fn solve_homes_pooled(
        &mut self,
        _topology: &Topology,
        _homes: Vec<NodeId>,
        _workers: usize,
    ) -> Result<Vec<ShortestPaths>, NetError> {
        unreachable!("plan_workers returns 1 without the `parallel` feature")
    }

    /// Rebuilds the whole cache for (`key`, `epoch`), reusing the path
    /// map's allocation when possible.
    fn rebuild_full(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
        key: TopologyKey,
        epoch: SnapshotEpoch,
    ) {
        let nv: Vec<f64> = (0..topology.node_count())
            .map(|i| node_validation(topology, snapshot, NodeId::new(i as u32)))
            .collect();
        let weights: LinkWeights = topology
            .link_ids()
            .map(|l| link_weight(topology, snapshot, self.params, &nv, l))
            .collect();
        let zero_weights = count_zero_weights(&weights);
        let paths = match self.cache.take() {
            Some(old) => {
                let mut paths = old.paths;
                paths.clear();
                paths
            }
            None => HashMap::new(),
        };
        self.cache = Some(EngineCache {
            key,
            epoch,
            nv,
            weights: Arc::new(weights),
            zero_weights,
            paths,
        });
        self.stats.full_rebuilds += 1;
    }
}

/// Equation (2) re-derived for one node — the exact summation order of
/// [`LvnComputer::node_validation`](crate::lvn::LvnComputer::node_validation)
/// (adjacency order, i.e. link-id order), so full and incremental rebuilds
/// produce bit-identical floats.
fn node_validation(topology: &Topology, snapshot: &TrafficSnapshot, node: NodeId) -> f64 {
    let mut used = Mbps::ZERO;
    let mut capacity = Mbps::ZERO;
    for inc in topology.adjacent(node) {
        used += snapshot.used(inc.link);
        capacity += topology.link(inc.link).capacity();
    }
    if capacity.is_zero() {
        0.0
    } else {
        used / capacity
    }
}

/// Equation (1) from cached NV values — the exact operation order of
/// [`LvnComputer::lvn`](crate::lvn::LvnComputer::lvn).
fn link_weight(
    topology: &Topology,
    snapshot: &TrafficSnapshot,
    params: LvnParams,
    nv: &[f64],
    link: LinkId,
) -> f64 {
    if snapshot.is_admin_down(link) {
        return f64::INFINITY;
    }
    let l = topology.link(link);
    let combined = params
        .combiner
        .combine(nv[l.a().index()], nv[l.b().index()]);
    let link_value = l.capacity().as_f64() / params.normalization_constant;
    combined + snapshot.utilization(topology, link).get() * link_value
}

/// Number of links whose weight is exactly `0.0` — the gate maintained in
/// [`EngineCache::zero_weights`] for dynamic tree repair.
fn count_zero_weights(weights: &LinkWeights) -> usize {
    weights.values().iter().filter(|w| **w == 0.0).count()
}

/// Patches `cache` for the `dirty` links: re-derive NV for their ≤ 2k
/// endpoint nodes, then re-weight every link incident to an affected node
/// (which covers the dirty links themselves — their endpoints are
/// affected by construction).
///
/// `changed` receives the sorted, deduplicated ids of the links whose
/// weight *value* actually changed (bitwise) — the input dynamic tree
/// repair needs. `cache.zero_weights` is kept in sync along the way.
fn patch_cache(
    cache: &mut EngineCache,
    topology: &Topology,
    snapshot: &TrafficSnapshot,
    params: LvnParams,
    dirty: &[LinkId],
    changed: &mut Vec<LinkId>,
) {
    changed.clear();
    let mut affected: Vec<NodeId> = Vec::with_capacity(2 * dirty.len());
    for &link in dirty {
        let l = topology.link(link);
        affected.push(l.a());
        affected.push(l.b());
    }
    affected.sort_unstable();
    affected.dedup();

    for &node in &affected {
        cache.nv[node.index()] = node_validation(topology, snapshot, node);
    }
    // While no pool batch is in flight (always, between calls) the Arc is
    // unique and `make_mut` is a plain dereference — no copy.
    let weights = Arc::make_mut(&mut cache.weights);
    // Links incident to two affected nodes are re-weighted twice; both
    // passes write the same value, so the second pass never re-pushes
    // (the bitwise comparison sees the already-updated weight).
    for &node in &affected {
        for inc in topology.adjacent(node) {
            let w = link_weight(topology, snapshot, params, &cache.nv, inc.link);
            let old = weights.weight(inc.link);
            if old.to_bits() != w.to_bits() {
                changed.push(inc.link);
                if old == 0.0 {
                    cache.zero_weights -= 1;
                }
                if w == 0.0 {
                    cache.zero_weights += 1;
                }
                weights.set_weight(inc.link, w);
            }
        }
    }
    changed.sort_unstable();
    changed.dedup();
}

/// The trivial selection for a locally-served request.
fn local_selection(home: NodeId) -> EngineSelection {
    EngineSelection {
        server: home,
        route: Route::trivial(home),
        served_locally: true,
    }
}

/// The cheapest reachable candidate by (cost, node id) — the exact
/// tie-break of the slow reference path.
fn pick_candidate(paths: &ShortestPaths, candidates: &[NodeId]) -> Option<EngineSelection> {
    let mut best: Option<(NodeId, f64)> = None;
    for &candidate in candidates {
        if let Some(dist) = paths.distance_to(candidate) {
            let better = match best {
                None => true,
                Some((best_node, best_dist)) => match dist.total_cmp(&best_dist) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => candidate < best_node,
                    std::cmp::Ordering::Greater => false,
                },
            };
            if better {
                best = Some((candidate, dist));
            }
        }
    }
    best.map(|(server, _)| EngineSelection {
        server,
        route: paths
            .route_to(server)
            .expect("reachable candidate has a route"),
        served_locally: false,
    })
}

/// Minimum number of uncached homes per pool worker before the automatic
/// policy adds another worker to a batch. Dispatching a pooled job costs
/// a couple of channel operations (≈ 1 µs, versus tens of µs for the
/// scoped-thread spawn this floor originally guarded), so it can sit far
/// lower than the old [`HOMES_PER_THREAD`] = 8: one GRNET-sized Dijkstra
/// run costs a few hundred nanoseconds, so ≈ 4 runs still amortise the
/// handoff.
pub const POOL_HOMES_PER_WORKER: usize = 4;

/// Former name of the fan-out floor, kept for downstream callers; the
/// persistent pool sizes batches by [`POOL_HOMES_PER_WORKER`].
pub const HOMES_PER_THREAD: usize = POOL_HOMES_PER_WORKER;

/// [`std::thread::available_parallelism`], resolved once per process.
/// The std call re-reads cgroup quota files on Linux (tens of
/// microseconds), which would dominate a small GRNET batch if paid on
/// every [`RoutingEngine::select_batch`] call.
fn hardware_parallelism() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::lvn::LvnComputer;
    use crate::topologies::grnet::{Grnet, GrnetNode, TimeOfDay};
    use crate::topology::TopologyBuilder;

    fn grnet_fixture() -> (Grnet, TrafficSnapshot) {
        let grnet = Grnet::new();
        let snap = grnet.snapshot(TimeOfDay::T1000);
        (grnet, snap)
    }

    #[test]
    fn engine_weights_match_lvn_computer_exactly() {
        let (grnet, snap) = grnet_fixture();
        let reference = LvnComputer::new(grnet.topology(), &snap, LvnParams::default()).weights();
        let mut engine = RoutingEngine::new(LvnParams::default());
        let weights = engine.weights(grnet.topology(), &snap).unwrap();
        assert_eq!(weights, &reference);
    }

    #[test]
    fn admin_down_masking_is_identical_on_both_engine_paths() {
        let (grnet, mut snap) = grnet_fixture();
        let link = grnet.link(crate::topologies::grnet::GrnetLink::PatraAthens);

        // Warm the cache, then flip admin state so `prepare` takes the
        // incremental patch path (1 dirty link on a 6-node topology).
        let mut engine = RoutingEngine::new(LvnParams::default());
        let _ = engine.weights(grnet.topology(), &snap).unwrap();
        snap.set_admin_down(link, true);
        let patched = engine.weights(grnet.topology(), &snap).unwrap().clone();
        assert_eq!(engine.stats().incremental_rebuilds, 1);
        assert!(patched.weight(link).is_infinite());

        // A cold engine (full rebuild) and the reference computer agree.
        let mut cold = RoutingEngine::new(LvnParams::default());
        let full = cold.weights(grnet.topology(), &snap).unwrap();
        assert_eq!(&patched, full);
        let reference = LvnComputer::new(grnet.topology(), &snap, LvnParams::default()).weights();
        assert_eq!(patched, reference);

        // Bringing the link back restores finite weights incrementally.
        snap.set_admin_down(link, false);
        let restored = engine.weights(grnet.topology(), &snap).unwrap();
        assert!(restored.weight(link).is_finite());
        let reference = LvnComputer::new(grnet.topology(), &snap, LvnParams::default()).weights();
        assert_eq!(restored, &reference);
    }

    #[test]
    fn warm_epoch_serves_from_cache() {
        let (grnet, snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        let home = grnet.node(GrnetNode::Patra);
        let candidates = [
            grnet.node(GrnetNode::Thessaloniki),
            grnet.node(GrnetNode::Xanthi),
        ];
        let first = engine
            .select(grnet.topology(), &snap, home, &candidates)
            .unwrap()
            .unwrap();
        let second = engine
            .select(grnet.topology(), &snap, home, &candidates)
            .unwrap()
            .unwrap();
        assert_eq!(first, second);
        let stats = engine.stats();
        assert_eq!(stats.full_rebuilds, 1);
        assert_eq!(stats.incremental_rebuilds, 0);
        assert_eq!(stats.dijkstra_runs, 1);
        assert_eq!(stats.path_cache_hits, 1);
        assert_eq!(stats.weight_cache_hits, 1);
    }

    #[test]
    fn incremental_patch_is_bit_identical_to_full_rebuild() {
        let (grnet, mut snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        engine.prepare(grnet.topology(), &snap).unwrap();

        // Nudge two links, then compare the patched table against a cold
        // engine's full rebuild — float-for-float.
        snap.add_used(LinkId::new(0), Mbps::new(3.5));
        snap.add_used(LinkId::new(4), Mbps::new(1.25));
        let patched = engine.weights(grnet.topology(), &snap).unwrap().clone();
        assert_eq!(engine.stats().incremental_rebuilds, 1);
        assert_eq!(engine.stats().full_rebuilds, 1);

        let mut cold = RoutingEngine::default();
        let full = cold.weights(grnet.topology(), &snap).unwrap();
        assert_eq!(&patched, full);
        let reference = LvnComputer::new(grnet.topology(), &snap, LvnParams::default()).weights();
        assert_eq!(patched, reference);
    }

    #[test]
    fn epoch_change_repairs_cached_trees_instead_of_dropping_them() {
        let (grnet, mut snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        let home = grnet.node(GrnetNode::Athens);
        let candidates = [grnet.node(GrnetNode::Ioannina)];
        engine
            .select(grnet.topology(), &snap, home, &candidates)
            .unwrap();
        snap.add_used(LinkId::new(2), Mbps::new(9.0));
        let warm = engine
            .select(grnet.topology(), &snap, home, &candidates)
            .unwrap();
        // Dynamic SSSP: the cached tree is repaired in place, so the
        // second select never re-runs Dijkstra — and still answers
        // exactly like a cold engine over the new weights.
        let stats = engine.stats();
        assert_eq!(stats.dijkstra_runs, 1);
        assert_eq!(stats.path_cache_hits, 1);
        assert_eq!(stats.tree_repairs, 1);
        assert_eq!(stats.trees_repaired, 1);
        let mut cold = RoutingEngine::default();
        let expected = cold
            .select(grnet.topology(), &snap, home, &candidates)
            .unwrap();
        assert_eq!(warm, expected);
    }

    #[test]
    fn local_hit_short_circuits_without_touching_the_cache() {
        let (grnet, snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        let home = grnet.node(GrnetNode::Patra);
        let sel = engine
            .select(grnet.topology(), &snap, home, &[home])
            .unwrap()
            .unwrap();
        assert!(sel.served_locally);
        assert_eq!(sel.server, home);
        assert_eq!(sel.route.hops(), 0);
        assert_eq!(engine.stats().local_hits, 1);
        assert_eq!(engine.stats().full_rebuilds, 0);
    }

    #[test]
    fn snapshot_instance_change_forces_full_rebuild() {
        let (grnet, snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        engine.prepare(grnet.topology(), &snap).unwrap();
        // A clone is a distinct instance: equal traffic, foreign token.
        let clone = snap.clone();
        engine.prepare(grnet.topology(), &clone).unwrap();
        assert_eq!(engine.stats().full_rebuilds, 2);
        assert_eq!(engine.stats().incremental_rebuilds, 0);
    }

    #[test]
    fn topology_swap_forces_full_rebuild() {
        let (grnet, snap) = grnet_fixture();
        let other = Grnet::new();
        let mut engine = RoutingEngine::default();
        engine.prepare(grnet.topology(), &snap).unwrap();
        let other_snap = other.snapshot(TimeOfDay::T1000);
        engine.prepare(other.topology(), &other_snap).unwrap();
        assert_eq!(engine.stats().full_rebuilds, 2);
    }

    #[test]
    fn select_matches_reference_dijkstra_on_grnet() {
        let (grnet, snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        let home = grnet.node(GrnetNode::Patra);
        let candidates = [
            grnet.node(GrnetNode::Thessaloniki),
            grnet.node(GrnetNode::Xanthi),
        ];
        let sel = engine
            .select(grnet.topology(), &snap, home, &candidates)
            .unwrap()
            .unwrap();

        let weights = LvnComputer::new(grnet.topology(), &snap, LvnParams::default()).weights();
        let reference = dijkstra(grnet.topology(), &weights, home).unwrap();
        assert_eq!(sel.server, grnet.node(GrnetNode::Thessaloniki));
        assert_eq!(Some(sel.route.clone()), reference.route_to(sel.server));
        assert_eq!(sel.route.cost(), reference.distance_to(sel.server).unwrap());
    }

    #[test]
    fn unreachable_and_empty_candidates_yield_none() {
        let mut b = TopologyBuilder::new();
        let home = b.add_node("home");
        let island = b.add_node("island");
        let other = b.add_node("other");
        b.add_link(home, other, Mbps::new(2.0)).unwrap();
        let topo = b.build();
        let snap = TrafficSnapshot::zero(&topo);
        let mut engine = RoutingEngine::default();
        assert!(engine
            .select(&topo, &snap, home, &[island])
            .unwrap()
            .is_none());
        assert!(engine.select(&topo, &snap, home, &[]).unwrap().is_none());
    }

    #[test]
    fn tie_break_prefers_lowest_node_id() {
        let mut b = TopologyBuilder::new();
        let home = b.add_node("home");
        let c1 = b.add_node("c1");
        let c2 = b.add_node("c2");
        b.add_link(home, c1, Mbps::new(2.0)).unwrap();
        b.add_link(home, c2, Mbps::new(2.0)).unwrap();
        let topo = b.build();
        let snap = TrafficSnapshot::zero(&topo);
        let mut engine = RoutingEngine::default();
        let sel = engine
            .select(&topo, &snap, home, &[c2, c1])
            .unwrap()
            .unwrap();
        assert_eq!(sel.server, c1);
    }

    #[test]
    fn mismatched_snapshot_is_an_error() {
        let (grnet, _) = grnet_fixture();
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_link(x, y, Mbps::new(1.0)).unwrap();
        let foreign = TrafficSnapshot::zero(&b.build());
        let mut engine = RoutingEngine::default();
        assert!(matches!(
            engine.prepare(grnet.topology(), &foreign),
            Err(NetError::WeightCountMismatch { .. })
        ));
    }

    #[test]
    fn batch_matches_sequential_selects_across_thread_counts() {
        let (grnet, snap) = grnet_fixture();
        let nodes = [
            GrnetNode::Patra,
            GrnetNode::Athens,
            GrnetNode::Thessaloniki,
            GrnetNode::Xanthi,
            GrnetNode::Ioannina,
            GrnetNode::Heraklio,
        ];
        let candidates: Vec<NodeId> = [GrnetNode::Thessaloniki, GrnetNode::Xanthi]
            .iter()
            .map(|&n| grnet.node(n))
            .collect();
        let requests: Vec<BatchRequest<'_>> = nodes
            .iter()
            .map(|&n| BatchRequest {
                home: grnet.node(n),
                candidates: &candidates,
            })
            .collect();

        let mut sequential = RoutingEngine::default();
        let expected: Vec<Option<EngineSelection>> = requests
            .iter()
            .map(|r| {
                sequential
                    .select(grnet.topology(), &snap, r.home, r.candidates)
                    .unwrap()
            })
            .collect();

        for threads in [1, 2, 4, 8] {
            let mut engine = RoutingEngine::default();
            let got = engine
                .select_batch_with_threads(grnet.topology(), &snap, &requests, threads)
                .unwrap();
            assert_eq!(got, expected, "threads={threads}");
            // One Dijkstra per distinct non-local home, cached thereafter.
            let again = engine
                .select_batch_with_threads(grnet.topology(), &snap, &requests, threads)
                .unwrap();
            assert_eq!(again, expected);
            assert_eq!(
                engine.stats().dijkstra_runs,
                requests
                    .iter()
                    .filter(|r| !r.candidates.contains(&r.home))
                    .map(|r| r.home)
                    .collect::<std::collections::BTreeSet<_>>()
                    .len() as u64
            );
        }
    }

    #[test]
    #[cfg(feature = "parallel")]
    fn explicit_batch_workers_engage_the_pool_and_match_sequential() {
        let (grnet, snap) = grnet_fixture();
        let candidates: Vec<NodeId> = [GrnetNode::Thessaloniki, GrnetNode::Xanthi]
            .iter()
            .map(|&n| grnet.node(n))
            .collect();
        let requests: Vec<BatchRequest<'_>> = (0..grnet.topology().node_count())
            .map(|i| BatchRequest {
                home: NodeId::new(i as u32),
                candidates: &candidates,
            })
            .collect();

        let mut sequential = RoutingEngine::default();
        let expected = sequential
            .select_batch(grnet.topology(), &snap, &requests)
            .unwrap();
        assert_eq!(sequential.stats().pool_batches, 0);

        // The override bypasses the hardware clamp, so the pool engages
        // even on a single-CPU host — and the answers are identical.
        let mut pooled = RoutingEngine::default();
        pooled.set_batch_workers(Some(3));
        assert_eq!(pooled.batch_workers(), Some(3));
        let got = pooled
            .select_batch(grnet.topology(), &snap, &requests)
            .unwrap();
        assert_eq!(got, expected);
        assert_eq!(pooled.stats().pool_batches, 1);
        assert_eq!(
            pooled.stats().dijkstra_runs,
            sequential.stats().dijkstra_runs
        );
    }

    #[test]
    fn zero_weights_gate_repair_and_drop_trees_instead() {
        // A zero-traffic snapshot yields all-zero LVN weights, so the
        // positivity gate must refuse to repair and drop the trees.
        let mut b = TopologyBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|i| b.add_node(format!("n{i}"))).collect();
        for i in 1..4 {
            b.add_link(n[i - 1], n[i], Mbps::new(10.0)).unwrap();
        }
        let topo = b.build();
        let mut snap = TrafficSnapshot::zero(&topo);
        let mut engine = RoutingEngine::default();
        engine.select(&topo, &snap, n[0], &[n[3]]).unwrap();
        snap.add_used(LinkId::new(2), Mbps::new(1.0));
        let warm = engine.select(&topo, &snap, n[0], &[n[3]]).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.incremental_rebuilds, 1);
        assert_eq!(stats.tree_repairs, 0);
        assert_eq!(stats.dijkstra_runs, 2); // tree was dropped and rebuilt
        let mut cold = RoutingEngine::default();
        assert_eq!(warm, cold.select(&topo, &snap, n[0], &[n[3]]).unwrap());
    }

    #[test]
    fn journal_overflow_falls_back_to_full_rebuild() {
        let (grnet, mut snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        engine.prepare(grnet.topology(), &snap).unwrap();
        for _ in 0..600 {
            snap.add_used(LinkId::new(0), Mbps::new(0.001));
        }
        engine.prepare(grnet.topology(), &snap).unwrap();
        assert_eq!(engine.stats().full_rebuilds, 2);
        assert_eq!(engine.stats().incremental_rebuilds, 0);
    }
}
