//! The epoch-cached routing engine — the per-request hot path of the VRA.
//!
//! [`LvnComputer`](crate::lvn::LvnComputer) and
//! [`dijkstra_with_trace`](crate::dijkstra::dijkstra_with_trace) recompute
//! everything from scratch on every call; that is the right shape for
//! reproducing the paper's tables, but a service answering a stream of
//! video requests recomputes identical state over and over: the traffic
//! snapshot only changes every 1–2 minutes (the paper's SNMP poll
//! interval), while requests arrive continuously.
//!
//! [`RoutingEngine`] memoizes every derived artefact and keys the cache on
//! the snapshot's [`SnapshotEpoch`]:
//!
//! * **node validations and link weights** are cached per epoch; when the
//!   snapshot advances by `k` journaled link mutations, only the ≤ `2k`
//!   nodes adjacent to those links have their NV re-derived (and only the
//!   links incident to them re-weighted) — bit-identical to a full
//!   recompute because each NV is re-summed in the same adjacency order;
//! * **shortest-path trees** are cached per home server in an
//!   [`Arc<ShortestPaths>`], so repeated requests from the same edge of
//!   the network skip Dijkstra entirely;
//! * cold Dijkstra runs reuse a [`DijkstraScratch`], so the steady state
//!   allocates nothing beyond the cached trees themselves.
//!
//! [`RoutingEngine::select_batch`] additionally fans independent Dijkstra
//! runs for distinct home servers out over scoped threads (feature
//! `parallel`, on by default).
//!
//! The engine's results are bit-identical to the slow reference path —
//! the property test `engine_vs_reference` and the unit tests below pin
//! this against [`LvnComputer`](crate::lvn::LvnComputer) +
//! [`dijkstra`](crate::dijkstra::dijkstra).
//!
//! # Examples
//!
//! ```
//! use vod_net::engine::RoutingEngine;
//! use vod_net::lvn::LvnParams;
//! use vod_net::topologies::grnet::{Grnet, GrnetNode, TimeOfDay};
//!
//! # fn main() -> Result<(), vod_net::NetError> {
//! let grnet = Grnet::new();
//! let snapshot = grnet.snapshot(TimeOfDay::T1000);
//! let mut engine = RoutingEngine::new(LvnParams::default());
//! let home = grnet.node(GrnetNode::Patra);
//! let candidates = [grnet.node(GrnetNode::Thessaloniki), grnet.node(GrnetNode::Xanthi)];
//!
//! let first = engine.select(grnet.topology(), &snapshot, home, &candidates)?.unwrap();
//! assert_eq!(first.server, grnet.node(GrnetNode::Thessaloniki));
//!
//! // Same epoch, same home: served entirely from cache.
//! let again = engine.select(grnet.topology(), &snapshot, home, &candidates)?.unwrap();
//! assert_eq!(again.server, first.server);
//! assert_eq!(engine.stats().dijkstra_runs, 1);
//! assert_eq!(engine.stats().path_cache_hits, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::dijkstra::{dijkstra_with_scratch, DijkstraScratch, ShortestPaths};
use crate::error::NetError;
use crate::ids::{LinkId, NodeId};
use crate::lvn::{LinkWeights, LvnParams};
use crate::route::Route;
use crate::snapshot::{SnapshotEpoch, TrafficSnapshot};
use crate::topology::Topology;
use crate::units::Mbps;

/// Identity of a [`Topology`] instance, used to detect cache invalidation
/// across topology swaps. The engine compares the *instance* (address +
/// dimensions), so callers must keep one `Topology` value alive across the
/// calls that should share cached state — which is the natural shape of a
/// long-running service anyway.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
struct TopologyKey {
    addr: usize,
    nodes: usize,
    links: usize,
}

impl TopologyKey {
    fn of(topology: &Topology) -> Self {
        TopologyKey {
            addr: topology as *const Topology as usize,
            nodes: topology.node_count(),
            links: topology.link_count(),
        }
    }
}

/// Counters describing how the engine answered its requests so far.
///
/// Useful for tests ("the warm path must not run Dijkstra") and for
/// operational visibility; see [`RoutingEngine::stats`].
#[derive(Debug, Copy, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Total [`RoutingEngine::select`] calls (batch requests included).
    pub requests: u64,
    /// Requests answered by the home server itself (the VRA's "IF the
    /// adjacent video server can provide the requested video" short
    /// circuit) — no weights, no Dijkstra.
    pub local_hits: u64,
    /// Calls that found the weight cache already at the snapshot's epoch.
    pub weight_cache_hits: u64,
    /// Weight tables rebuilt from scratch (cold cache, topology change,
    /// snapshot instance change, or journal overflow).
    pub full_rebuilds: u64,
    /// Weight tables patched incrementally from the snapshot's mutation
    /// journal.
    pub incremental_rebuilds: u64,
    /// Dijkstra executions (cache misses on the shortest-path cache).
    pub dijkstra_runs: u64,
    /// Requests answered from a cached shortest-path tree.
    pub path_cache_hits: u64,
}

/// The outcome of one engine selection: the chosen server and the
/// least-cost route to it.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSelection {
    /// The selected video server.
    pub server: NodeId,
    /// The least-cost route from the home server to [`Self::server`]
    /// (trivial when served locally).
    pub route: Route,
    /// True when the home server itself held the title and the request
    /// never reached the routing stage.
    pub served_locally: bool,
}

/// One request of a [`RoutingEngine::select_batch`] call.
#[derive(Debug, Copy, Clone)]
pub struct BatchRequest<'a> {
    /// The client's home (directly connected) server.
    pub home: NodeId,
    /// The servers holding the requested title.
    pub candidates: &'a [NodeId],
}

/// Cached state derived from one (topology, snapshot-epoch) pair.
#[derive(Debug, Clone)]
struct EngineCache {
    key: TopologyKey,
    epoch: SnapshotEpoch,
    /// Per-node NV values (equation (2)), in node-id order.
    nv: Vec<f64>,
    /// Per-link LVN weights (equation (1)), in link-id order.
    weights: LinkWeights,
    /// Shortest-path trees computed at this epoch, keyed by home server.
    paths: HashMap<NodeId, Arc<ShortestPaths>>,
}

/// Epoch-cached implementation of the paper's Virtual Routing Algorithm
/// hot path. See the [module docs](self) for the caching model.
#[derive(Debug)]
pub struct RoutingEngine {
    params: LvnParams,
    cache: Option<EngineCache>,
    scratch: DijkstraScratch,
    stats: EngineStats,
}

impl Default for RoutingEngine {
    fn default() -> Self {
        RoutingEngine::new(LvnParams::default())
    }
}

impl Clone for RoutingEngine {
    fn clone(&self) -> Self {
        RoutingEngine {
            params: self.params,
            cache: self.cache.clone(),
            // Scratch buffers are cheap to regrow; don't clone the heap.
            scratch: DijkstraScratch::new(),
            stats: self.stats,
        }
    }
}

impl RoutingEngine {
    /// Creates an engine with the given LVN parameters and a cold cache.
    pub fn new(params: LvnParams) -> Self {
        RoutingEngine {
            params,
            cache: None,
            scratch: DijkstraScratch::new(),
            stats: EngineStats::default(),
        }
    }

    /// The LVN parameters in use.
    pub fn params(&self) -> LvnParams {
        self.params
    }

    /// Counters of cache hits, rebuilds and Dijkstra runs so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Resets the statistics counters (the cache is kept).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Drops all cached state; the next call rebuilds from scratch.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }

    /// Ensures the weight cache matches `snapshot`'s current epoch,
    /// rebuilding as little as possible.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::WeightCountMismatch`] when the snapshot does
    /// not cover `topology`'s links.
    pub fn prepare(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
    ) -> Result<(), NetError> {
        snapshot.check_matches(topology)?;
        let key = TopologyKey::of(topology);
        let epoch = snapshot.epoch();

        if let Some(cache) = self.cache.as_mut() {
            if cache.key == key {
                if cache.epoch == epoch {
                    self.stats.weight_cache_hits += 1;
                    return Ok(());
                }
                if let Some(dirty) = collect_dirty(snapshot, cache.epoch) {
                    // Patching beats a full pass only while the affected
                    // neighbourhood is small relative to the graph.
                    if 2 * dirty.len() < topology.node_count().max(1) {
                        patch_cache(cache, topology, snapshot, self.params, &dirty);
                        cache.epoch = epoch;
                        cache.paths.clear();
                        self.stats.incremental_rebuilds += 1;
                        return Ok(());
                    }
                }
            }
        }

        self.rebuild_full(topology, snapshot, key, epoch);
        Ok(())
    }

    /// The cached per-link weight table for `snapshot`'s current epoch —
    /// bit-identical to
    /// [`LvnComputer::weights`](crate::lvn::LvnComputer::weights).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoutingEngine::prepare`].
    pub fn weights(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
    ) -> Result<&LinkWeights, NetError> {
        self.prepare(topology, snapshot)?;
        Ok(&self
            .cache
            .as_ref()
            .expect("prepare populates the cache")
            .weights)
    }

    /// The shortest-path tree from `home` at `snapshot`'s current epoch,
    /// computed at most once per (epoch, home) pair.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoutingEngine::prepare`], plus
    /// [`NetError::UnknownNode`] for a foreign `home`.
    pub fn paths_from(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
        home: NodeId,
    ) -> Result<Arc<ShortestPaths>, NetError> {
        self.prepare(topology, snapshot)?;
        topology.try_node(home)?;
        let cache = self.cache.as_mut().expect("prepare populates the cache");
        if let Some(paths) = cache.paths.get(&home) {
            self.stats.path_cache_hits += 1;
            return Ok(Arc::clone(paths));
        }
        let paths = Arc::new(dijkstra_with_scratch(
            topology,
            &cache.weights,
            home,
            &mut self.scratch,
        )?);
        self.stats.dijkstra_runs += 1;
        cache.paths.insert(home, Arc::clone(&paths));
        Ok(paths)
    }

    /// Runs the VRA selection for one request: local short circuit, then
    /// cheapest candidate by (cost, node id) over the cached tree.
    /// Returns `None` when no candidate is reachable (including an empty
    /// candidate list) — identical decisions, costs and tie-breaks to the
    /// trace-producing slow path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoutingEngine::paths_from`].
    ///
    /// # Panics
    ///
    /// Panics if a candidate id is out of range for `topology`.
    pub fn select(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
        home: NodeId,
        candidates: &[NodeId],
    ) -> Result<Option<EngineSelection>, NetError> {
        self.stats.requests += 1;
        if candidates.contains(&home) {
            self.stats.local_hits += 1;
            return Ok(Some(local_selection(home)));
        }
        let paths = self.paths_from(topology, snapshot, home)?;
        Ok(pick_candidate(&paths, candidates))
    }

    /// Answers a batch of requests against one prepared epoch, running
    /// Dijkstra for the distinct uncached home servers in parallel
    /// (feature `parallel`; sequential otherwise). Uses one worker per
    /// available CPU, capped at the number of homes to solve; small
    /// batches run sequentially because thread spawn overhead dwarfs a
    /// handful of Dijkstra runs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoutingEngine::select`].
    pub fn select_batch(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
        requests: &[BatchRequest<'_>],
    ) -> Result<Vec<Option<EngineSelection>>, NetError> {
        self.select_batch_with_threads(topology, snapshot, requests, hardware_parallelism())
    }

    /// [`RoutingEngine::select_batch`] with an explicit worker count.
    /// The count is an upper bound, not a demand: it is clamped to the
    /// machine's available parallelism and to roughly one worker per
    /// [`HOMES_PER_THREAD`] uncached homes, so small batches always take
    /// the sequential path regardless of the requested concurrency
    /// (`1` forces it unconditionally).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoutingEngine::select`].
    pub fn select_batch_with_threads(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
        requests: &[BatchRequest<'_>],
        threads: usize,
    ) -> Result<Vec<Option<EngineSelection>>, NetError> {
        self.prepare(topology, snapshot)?;

        // Distinct home servers that actually need a Dijkstra run.
        let mut homes: Vec<NodeId> = requests
            .iter()
            .filter(|r| !r.candidates.contains(&r.home))
            .map(|r| r.home)
            .collect();
        homes.sort_unstable();
        homes.dedup();
        for &home in &homes {
            topology.try_node(home)?;
        }
        {
            let cache = self.cache.as_ref().expect("prepare populates the cache");
            homes.retain(|h| !cache.paths.contains_key(h));
        }

        let solved = {
            let cache = self.cache.as_ref().expect("prepare populates the cache");
            solve_homes(topology, &cache.weights, &homes, threads, &mut self.scratch)?
        };
        self.stats.dijkstra_runs += homes.len() as u64;
        let cache = self.cache.as_mut().expect("prepare populates the cache");
        for (home, paths) in homes.into_iter().zip(solved) {
            cache.paths.insert(home, Arc::new(paths));
        }

        Ok(requests
            .iter()
            .map(|r| {
                self.stats.requests += 1;
                if r.candidates.contains(&r.home) {
                    self.stats.local_hits += 1;
                    return Some(local_selection(r.home));
                }
                self.stats.path_cache_hits += 1;
                let paths = &cache.paths[&r.home];
                pick_candidate(paths, r.candidates)
            })
            .collect())
    }

    /// Rebuilds the whole cache for (`key`, `epoch`), reusing the path
    /// map's allocation when possible.
    fn rebuild_full(
        &mut self,
        topology: &Topology,
        snapshot: &TrafficSnapshot,
        key: TopologyKey,
        epoch: SnapshotEpoch,
    ) {
        let nv: Vec<f64> = (0..topology.node_count())
            .map(|i| node_validation(topology, snapshot, NodeId::new(i as u32)))
            .collect();
        let weights: LinkWeights = topology
            .link_ids()
            .map(|l| link_weight(topology, snapshot, self.params, &nv, l))
            .collect();
        let paths = match self.cache.take() {
            Some(old) => {
                let mut paths = old.paths;
                paths.clear();
                paths
            }
            None => HashMap::new(),
        };
        self.cache = Some(EngineCache {
            key,
            epoch,
            nv,
            weights,
            paths,
        });
        self.stats.full_rebuilds += 1;
    }
}

/// Equation (2) re-derived for one node — the exact summation order of
/// [`LvnComputer::node_validation`](crate::lvn::LvnComputer::node_validation)
/// (adjacency order, i.e. link-id order), so full and incremental rebuilds
/// produce bit-identical floats.
fn node_validation(topology: &Topology, snapshot: &TrafficSnapshot, node: NodeId) -> f64 {
    let mut used = Mbps::ZERO;
    let mut capacity = Mbps::ZERO;
    for inc in topology.adjacent(node) {
        used += snapshot.used(inc.link);
        capacity += topology.link(inc.link).capacity();
    }
    if capacity.is_zero() {
        0.0
    } else {
        used / capacity
    }
}

/// Equation (1) from cached NV values — the exact operation order of
/// [`LvnComputer::lvn`](crate::lvn::LvnComputer::lvn).
fn link_weight(
    topology: &Topology,
    snapshot: &TrafficSnapshot,
    params: LvnParams,
    nv: &[f64],
    link: LinkId,
) -> f64 {
    if snapshot.is_admin_down(link) {
        return f64::INFINITY;
    }
    let l = topology.link(link);
    let combined = params
        .combiner
        .combine(nv[l.a().index()], nv[l.b().index()]);
    let link_value = l.capacity().as_f64() / params.normalization_constant;
    combined + snapshot.utilization(topology, link).get() * link_value
}

/// The deduplicated dirty-link set since `since`, or `None` when the
/// journal window was exceeded and a full rebuild is required.
fn collect_dirty(snapshot: &TrafficSnapshot, since: SnapshotEpoch) -> Option<Vec<LinkId>> {
    let mut dirty: Vec<LinkId> = snapshot.dirty_links_since(since)?.collect();
    dirty.sort_unstable();
    dirty.dedup();
    Some(dirty)
}

/// Patches `cache` for the `dirty` links: re-derive NV for their ≤ 2k
/// endpoint nodes, then re-weight every link incident to an affected node
/// (which covers the dirty links themselves — their endpoints are
/// affected by construction).
fn patch_cache(
    cache: &mut EngineCache,
    topology: &Topology,
    snapshot: &TrafficSnapshot,
    params: LvnParams,
    dirty: &[LinkId],
) {
    let mut affected: Vec<NodeId> = Vec::with_capacity(2 * dirty.len());
    for &link in dirty {
        let l = topology.link(link);
        affected.push(l.a());
        affected.push(l.b());
    }
    affected.sort_unstable();
    affected.dedup();

    for &node in &affected {
        cache.nv[node.index()] = node_validation(topology, snapshot, node);
    }
    // Links incident to two affected nodes are re-weighted twice; both
    // passes write the same value, so no dedup pass is needed.
    for &node in &affected {
        for inc in topology.adjacent(node) {
            let w = link_weight(topology, snapshot, params, &cache.nv, inc.link);
            cache.weights.set_weight(inc.link, w);
        }
    }
}

/// The trivial selection for a locally-served request.
fn local_selection(home: NodeId) -> EngineSelection {
    EngineSelection {
        server: home,
        route: Route::trivial(home),
        served_locally: true,
    }
}

/// The cheapest reachable candidate by (cost, node id) — the exact
/// tie-break of the slow reference path.
fn pick_candidate(paths: &ShortestPaths, candidates: &[NodeId]) -> Option<EngineSelection> {
    let mut best: Option<(NodeId, f64)> = None;
    for &candidate in candidates {
        if let Some(dist) = paths.distance_to(candidate) {
            let better = match best {
                None => true,
                Some((best_node, best_dist)) => match dist.total_cmp(&best_dist) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => candidate < best_node,
                    std::cmp::Ordering::Greater => false,
                },
            };
            if better {
                best = Some((candidate, dist));
            }
        }
    }
    best.map(|(server, _)| EngineSelection {
        server,
        route: paths
            .route_to(server)
            .expect("reachable candidate has a route"),
        served_locally: false,
    })
}

/// Minimum number of uncached homes each worker thread must have before
/// [`solve_homes`] fans out. Spawning a scoped thread costs tens of
/// microseconds while one GRNET-sized Dijkstra run costs a few hundred
/// nanoseconds, so fanning out a small batch is a large net loss (the
/// `select_batch/grnet/2` bench row regressed ~50x before this floor).
pub const HOMES_PER_THREAD: usize = 8;

/// [`std::thread::available_parallelism`], resolved once per process.
/// The std call re-reads cgroup quota files on Linux (tens of
/// microseconds), which would dominate a small GRNET batch if paid on
/// every [`RoutingEngine::select_batch`] call.
fn hardware_parallelism() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Runs Dijkstra from every home, splitting the homes across scoped
/// worker threads when the `parallel` feature is enabled and the batch
/// is large enough to amortise thread spawn overhead. The requested
/// worker count is clamped to the machine's available parallelism and
/// to one worker per [`HOMES_PER_THREAD`] homes.
fn solve_homes(
    topology: &Topology,
    weights: &LinkWeights,
    homes: &[NodeId],
    threads: usize,
    scratch: &mut DijkstraScratch,
) -> Result<Vec<ShortestPaths>, NetError> {
    if homes.is_empty() {
        return Ok(Vec::new());
    }
    #[cfg(feature = "parallel")]
    {
        let threads = threads
            .min(hardware_parallelism())
            .min(homes.len().div_ceil(HOMES_PER_THREAD))
            .max(1);
        if threads > 1 {
            let chunk = homes.len().div_ceil(threads);
            let mut out: Vec<Option<Result<ShortestPaths, NetError>>> =
                (0..homes.len()).map(|_| None).collect();
            std::thread::scope(|scope| {
                for (home_chunk, out_chunk) in homes.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        let mut scratch = DijkstraScratch::new();
                        for (&home, slot) in home_chunk.iter().zip(out_chunk.iter_mut()) {
                            *slot =
                                Some(dijkstra_with_scratch(topology, weights, home, &mut scratch));
                        }
                    });
                }
            });
            return out
                .into_iter()
                .map(|slot| slot.expect("every home chunk was solved"))
                .collect();
        }
    }
    #[cfg(not(feature = "parallel"))]
    let _ = threads;
    homes
        .iter()
        .map(|&home| dijkstra_with_scratch(topology, weights, home, scratch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::lvn::LvnComputer;
    use crate::topologies::grnet::{Grnet, GrnetNode, TimeOfDay};
    use crate::topology::TopologyBuilder;

    fn grnet_fixture() -> (Grnet, TrafficSnapshot) {
        let grnet = Grnet::new();
        let snap = grnet.snapshot(TimeOfDay::T1000);
        (grnet, snap)
    }

    #[test]
    fn engine_weights_match_lvn_computer_exactly() {
        let (grnet, snap) = grnet_fixture();
        let reference = LvnComputer::new(grnet.topology(), &snap, LvnParams::default()).weights();
        let mut engine = RoutingEngine::new(LvnParams::default());
        let weights = engine.weights(grnet.topology(), &snap).unwrap();
        assert_eq!(weights, &reference);
    }

    #[test]
    fn admin_down_masking_is_identical_on_both_engine_paths() {
        let (grnet, mut snap) = grnet_fixture();
        let link = grnet.link(crate::topologies::grnet::GrnetLink::PatraAthens);

        // Warm the cache, then flip admin state so `prepare` takes the
        // incremental patch path (1 dirty link on a 6-node topology).
        let mut engine = RoutingEngine::new(LvnParams::default());
        let _ = engine.weights(grnet.topology(), &snap).unwrap();
        snap.set_admin_down(link, true);
        let patched = engine.weights(grnet.topology(), &snap).unwrap().clone();
        assert_eq!(engine.stats().incremental_rebuilds, 1);
        assert!(patched.weight(link).is_infinite());

        // A cold engine (full rebuild) and the reference computer agree.
        let mut cold = RoutingEngine::new(LvnParams::default());
        let full = cold.weights(grnet.topology(), &snap).unwrap();
        assert_eq!(&patched, full);
        let reference = LvnComputer::new(grnet.topology(), &snap, LvnParams::default()).weights();
        assert_eq!(patched, reference);

        // Bringing the link back restores finite weights incrementally.
        snap.set_admin_down(link, false);
        let restored = engine.weights(grnet.topology(), &snap).unwrap();
        assert!(restored.weight(link).is_finite());
        let reference = LvnComputer::new(grnet.topology(), &snap, LvnParams::default()).weights();
        assert_eq!(restored, &reference);
    }

    #[test]
    fn warm_epoch_serves_from_cache() {
        let (grnet, snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        let home = grnet.node(GrnetNode::Patra);
        let candidates = [
            grnet.node(GrnetNode::Thessaloniki),
            grnet.node(GrnetNode::Xanthi),
        ];
        let first = engine
            .select(grnet.topology(), &snap, home, &candidates)
            .unwrap()
            .unwrap();
        let second = engine
            .select(grnet.topology(), &snap, home, &candidates)
            .unwrap()
            .unwrap();
        assert_eq!(first, second);
        let stats = engine.stats();
        assert_eq!(stats.full_rebuilds, 1);
        assert_eq!(stats.incremental_rebuilds, 0);
        assert_eq!(stats.dijkstra_runs, 1);
        assert_eq!(stats.path_cache_hits, 1);
        assert_eq!(stats.weight_cache_hits, 1);
    }

    #[test]
    fn incremental_patch_is_bit_identical_to_full_rebuild() {
        let (grnet, mut snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        engine.prepare(grnet.topology(), &snap).unwrap();

        // Nudge two links, then compare the patched table against a cold
        // engine's full rebuild — float-for-float.
        snap.add_used(LinkId::new(0), Mbps::new(3.5));
        snap.add_used(LinkId::new(4), Mbps::new(1.25));
        let patched = engine.weights(grnet.topology(), &snap).unwrap().clone();
        assert_eq!(engine.stats().incremental_rebuilds, 1);
        assert_eq!(engine.stats().full_rebuilds, 1);

        let mut cold = RoutingEngine::default();
        let full = cold.weights(grnet.topology(), &snap).unwrap();
        assert_eq!(&patched, full);
        let reference = LvnComputer::new(grnet.topology(), &snap, LvnParams::default()).weights();
        assert_eq!(patched, reference);
    }

    #[test]
    fn epoch_change_invalidates_path_cache() {
        let (grnet, mut snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        let home = grnet.node(GrnetNode::Athens);
        let candidates = [grnet.node(GrnetNode::Ioannina)];
        engine
            .select(grnet.topology(), &snap, home, &candidates)
            .unwrap();
        snap.add_used(LinkId::new(2), Mbps::new(9.0));
        engine
            .select(grnet.topology(), &snap, home, &candidates)
            .unwrap();
        assert_eq!(engine.stats().dijkstra_runs, 2);
        assert_eq!(engine.stats().path_cache_hits, 0);
    }

    #[test]
    fn local_hit_short_circuits_without_touching_the_cache() {
        let (grnet, snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        let home = grnet.node(GrnetNode::Patra);
        let sel = engine
            .select(grnet.topology(), &snap, home, &[home])
            .unwrap()
            .unwrap();
        assert!(sel.served_locally);
        assert_eq!(sel.server, home);
        assert_eq!(sel.route.hops(), 0);
        assert_eq!(engine.stats().local_hits, 1);
        assert_eq!(engine.stats().full_rebuilds, 0);
    }

    #[test]
    fn snapshot_instance_change_forces_full_rebuild() {
        let (grnet, snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        engine.prepare(grnet.topology(), &snap).unwrap();
        // A clone is a distinct instance: equal traffic, foreign token.
        let clone = snap.clone();
        engine.prepare(grnet.topology(), &clone).unwrap();
        assert_eq!(engine.stats().full_rebuilds, 2);
        assert_eq!(engine.stats().incremental_rebuilds, 0);
    }

    #[test]
    fn topology_swap_forces_full_rebuild() {
        let (grnet, snap) = grnet_fixture();
        let other = Grnet::new();
        let mut engine = RoutingEngine::default();
        engine.prepare(grnet.topology(), &snap).unwrap();
        let other_snap = other.snapshot(TimeOfDay::T1000);
        engine.prepare(other.topology(), &other_snap).unwrap();
        assert_eq!(engine.stats().full_rebuilds, 2);
    }

    #[test]
    fn select_matches_reference_dijkstra_on_grnet() {
        let (grnet, snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        let home = grnet.node(GrnetNode::Patra);
        let candidates = [
            grnet.node(GrnetNode::Thessaloniki),
            grnet.node(GrnetNode::Xanthi),
        ];
        let sel = engine
            .select(grnet.topology(), &snap, home, &candidates)
            .unwrap()
            .unwrap();

        let weights = LvnComputer::new(grnet.topology(), &snap, LvnParams::default()).weights();
        let reference = dijkstra(grnet.topology(), &weights, home).unwrap();
        assert_eq!(sel.server, grnet.node(GrnetNode::Thessaloniki));
        assert_eq!(Some(sel.route.clone()), reference.route_to(sel.server));
        assert_eq!(sel.route.cost(), reference.distance_to(sel.server).unwrap());
    }

    #[test]
    fn unreachable_and_empty_candidates_yield_none() {
        let mut b = TopologyBuilder::new();
        let home = b.add_node("home");
        let island = b.add_node("island");
        let other = b.add_node("other");
        b.add_link(home, other, Mbps::new(2.0)).unwrap();
        let topo = b.build();
        let snap = TrafficSnapshot::zero(&topo);
        let mut engine = RoutingEngine::default();
        assert!(engine
            .select(&topo, &snap, home, &[island])
            .unwrap()
            .is_none());
        assert!(engine.select(&topo, &snap, home, &[]).unwrap().is_none());
    }

    #[test]
    fn tie_break_prefers_lowest_node_id() {
        let mut b = TopologyBuilder::new();
        let home = b.add_node("home");
        let c1 = b.add_node("c1");
        let c2 = b.add_node("c2");
        b.add_link(home, c1, Mbps::new(2.0)).unwrap();
        b.add_link(home, c2, Mbps::new(2.0)).unwrap();
        let topo = b.build();
        let snap = TrafficSnapshot::zero(&topo);
        let mut engine = RoutingEngine::default();
        let sel = engine
            .select(&topo, &snap, home, &[c2, c1])
            .unwrap()
            .unwrap();
        assert_eq!(sel.server, c1);
    }

    #[test]
    fn mismatched_snapshot_is_an_error() {
        let (grnet, _) = grnet_fixture();
        let mut b = TopologyBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_link(x, y, Mbps::new(1.0)).unwrap();
        let foreign = TrafficSnapshot::zero(&b.build());
        let mut engine = RoutingEngine::default();
        assert!(matches!(
            engine.prepare(grnet.topology(), &foreign),
            Err(NetError::WeightCountMismatch { .. })
        ));
    }

    #[test]
    fn batch_matches_sequential_selects_across_thread_counts() {
        let (grnet, snap) = grnet_fixture();
        let nodes = [
            GrnetNode::Patra,
            GrnetNode::Athens,
            GrnetNode::Thessaloniki,
            GrnetNode::Xanthi,
            GrnetNode::Ioannina,
            GrnetNode::Heraklio,
        ];
        let candidates: Vec<NodeId> = [GrnetNode::Thessaloniki, GrnetNode::Xanthi]
            .iter()
            .map(|&n| grnet.node(n))
            .collect();
        let requests: Vec<BatchRequest<'_>> = nodes
            .iter()
            .map(|&n| BatchRequest {
                home: grnet.node(n),
                candidates: &candidates,
            })
            .collect();

        let mut sequential = RoutingEngine::default();
        let expected: Vec<Option<EngineSelection>> = requests
            .iter()
            .map(|r| {
                sequential
                    .select(grnet.topology(), &snap, r.home, r.candidates)
                    .unwrap()
            })
            .collect();

        for threads in [1, 2, 4, 8] {
            let mut engine = RoutingEngine::default();
            let got = engine
                .select_batch_with_threads(grnet.topology(), &snap, &requests, threads)
                .unwrap();
            assert_eq!(got, expected, "threads={threads}");
            // One Dijkstra per distinct non-local home, cached thereafter.
            let again = engine
                .select_batch_with_threads(grnet.topology(), &snap, &requests, threads)
                .unwrap();
            assert_eq!(again, expected);
            assert_eq!(
                engine.stats().dijkstra_runs,
                requests
                    .iter()
                    .filter(|r| !r.candidates.contains(&r.home))
                    .map(|r| r.home)
                    .collect::<std::collections::BTreeSet<_>>()
                    .len() as u64
            );
        }
    }

    #[test]
    fn journal_overflow_falls_back_to_full_rebuild() {
        let (grnet, mut snap) = grnet_fixture();
        let mut engine = RoutingEngine::default();
        engine.prepare(grnet.topology(), &snap).unwrap();
        for _ in 0..600 {
            snap.add_used(LinkId::new(0), Mbps::new(0.001));
        }
        engine.prepare(grnet.topology(), &snap).unwrap();
        assert_eq!(engine.stats().full_rebuilds, 2);
        assert_eq!(engine.stats().incremental_rebuilds, 0);
    }
}
