//! Deterministic synthetic topologies: line, ring, star, grid, full mesh.
//!
//! Used by scale benchmarks (DESIGN.md E5) and by tests that need graphs
//! with known structure. All nodes are video servers and all links share
//! one capacity.

use crate::error::NetError;
use crate::topology::{Topology, TopologyBuilder};
use crate::units::Mbps;

/// A line (path graph) of `n` nodes.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: usize, capacity: Mbps) -> Topology {
    assert!(n > 0, "a line needs at least one node");
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..n).map(|i| b.add_node(format!("v{i}"))).collect();
    for i in 1..n {
        b.add_link(nodes[i - 1], nodes[i], capacity)
            .expect("line links are well-formed");
    }
    b.build()
}

/// A ring of `n` nodes.
///
/// # Panics
///
/// Panics if `n < 3` (a smaller ring would need parallel links).
pub fn ring(n: usize, capacity: Mbps) -> Topology {
    assert!(n >= 3, "a ring needs at least three nodes");
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..n).map(|i| b.add_node(format!("v{i}"))).collect();
    for i in 0..n {
        b.add_link(nodes[i], nodes[(i + 1) % n], capacity)
            .expect("ring links are well-formed");
    }
    b.build()
}

/// A star: node 0 is the hub, nodes `1..n` are leaves.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize, capacity: Mbps) -> Topology {
    assert!(n >= 2, "a star needs a hub and at least one leaf");
    let mut b = TopologyBuilder::new();
    let hub = b.add_node("hub");
    for i in 1..n {
        let leaf = b.add_node(format!("v{i}"));
        b.add_link(hub, leaf, capacity)
            .expect("star links are well-formed");
    }
    b.build()
}

/// A `width × height` grid with 4-neighbor connectivity.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(width: usize, height: usize, capacity: Mbps) -> Topology {
    assert!(width > 0 && height > 0, "grid dimensions must be positive");
    let mut b = TopologyBuilder::new();
    let mut ids = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            ids.push(b.add_node(format!("g{x}_{y}")));
        }
    }
    let at = |x: usize, y: usize| ids[y * width + x];
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                b.add_link(at(x, y), at(x + 1, y), capacity)
                    .expect("grid links are well-formed");
            }
            if y + 1 < height {
                b.add_link(at(x, y), at(x, y + 1), capacity)
                    .expect("grid links are well-formed");
            }
        }
    }
    b.build()
}

/// A complete graph on `n` nodes.
///
/// # Errors
///
/// Returns an error only if the builder rejects a link, which cannot
/// happen for distinct dense ids; the `Result` mirrors the builder API.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn full_mesh(n: usize, capacity: Mbps) -> Result<Topology, NetError> {
    assert!(n >= 2, "a mesh needs at least two nodes");
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..n).map(|i| b.add_node(format!("v{i}"))).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_link(nodes[i], nodes[j], capacity)?;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    const CAP: Mbps = Mbps::ZERO;

    #[test]
    fn line_counts() {
        let t = line(5, Mbps::new(2.0));
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.link_count(), 4);
        assert!(t.is_connected());
        assert_eq!(t.degree(NodeId::new(0)), 1);
        assert_eq!(t.degree(NodeId::new(2)), 2);
    }

    #[test]
    fn single_node_line() {
        let t = line(1, CAP);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.link_count(), 0);
        assert!(t.is_connected());
    }

    #[test]
    fn ring_counts() {
        let t = ring(6, Mbps::new(2.0));
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.link_count(), 6);
        assert!(t.node_ids().all(|n| t.degree(n) == 2));
        assert!(t.is_connected());
    }

    #[test]
    #[should_panic(expected = "three nodes")]
    fn tiny_ring_rejected() {
        let _ = ring(2, CAP);
    }

    #[test]
    fn star_counts() {
        let t = star(5, Mbps::new(2.0));
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.link_count(), 4);
        assert_eq!(t.degree(NodeId::new(0)), 4);
        assert!(t.is_connected());
    }

    #[test]
    fn grid_counts() {
        let t = grid(3, 4, Mbps::new(2.0));
        assert_eq!(t.node_count(), 12);
        // links: horizontal 2*4 + vertical 3*3 = 17
        assert_eq!(t.link_count(), 17);
        assert!(t.is_connected());
    }

    #[test]
    fn mesh_counts() {
        let t = full_mesh(5, Mbps::new(2.0)).unwrap();
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.link_count(), 10);
        assert!(t.node_ids().all(|n| t.degree(n) == 4));
    }
}
