//! Seeded random topology generation for robustness and scale experiments.
//!
//! Two models are provided:
//!
//! * [`connected_gnp`] — an Erdős–Rényi `G(n, p)` graph made connected by a
//!   random spanning tree (every extra edge kept with probability `p`);
//! * [`waxman`] — the Waxman model commonly used for Internet-like
//!   topologies: nodes are placed in the unit square and an edge between
//!   `u` and `v` exists with probability `α · exp(−d(u,v) / (β · L))`.
//!
//! Link capacities are drawn from a capacity set reminiscent of the
//! paper's era (2 and 18 Mbps backbone links, plus a few faster tiers).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::topology::{Topology, TopologyBuilder};
use crate::units::Mbps;

/// Capacity tiers used by the random generators, in Mbps. The 2 and 18
/// Mbps tiers are the GRNET capacities of the paper's Table 2.
pub const CAPACITY_TIERS: [f64; 4] = [2.0, 18.0, 34.0, 155.0];

/// Generates a connected Erdős–Rényi-style graph with `n` nodes.
///
/// A random spanning tree (uniform over random node permutations)
/// guarantees connectivity; each remaining node pair is linked with
/// probability `p`. Deterministic for a given `(n, p, seed)`.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not within `[0, 1]`.
pub fn connected_gnp(n: usize, p: f64, seed: u64) -> Topology {
    assert!(n > 0, "need at least one node");
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..n).map(|i| b.add_node(format!("r{i}"))).collect();

    // Random spanning tree: attach each node (in shuffled order) to a
    // random earlier node.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        let child = order[i];
        b.add_link(nodes[parent], nodes[child], random_capacity(&mut rng))
            .expect("spanning tree links are distinct");
    }

    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                // Ignore duplicates already added by the spanning tree.
                let _ = b.add_link(nodes[i], nodes[j], random_capacity(&mut rng));
            }
        }
    }
    b.build()
}

/// Generates a Waxman random graph, retrying until connected (up to 64
/// attempts, then falling back to adding a spanning tree).
///
/// # Panics
///
/// Panics if `n == 0`, or if `alpha`/`beta` are not in `(0, 1]`.
pub fn waxman(n: usize, alpha: f64, beta: f64, seed: u64) -> Topology {
    assert!(n > 0, "need at least one node");
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);

    for _ in 0..64 {
        let topo = waxman_once(n, alpha, beta, &mut rng, false);
        if topo.is_connected() {
            return topo;
        }
    }
    waxman_once(n, alpha, beta, &mut rng, true)
}

fn waxman_once(n: usize, alpha: f64, beta: f64, rng: &mut StdRng, force_tree: bool) -> Topology {
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..n).map(|i| b.add_node(format!("w{i}"))).collect();
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let l = 2f64.sqrt(); // max distance in the unit square

    if force_tree {
        for i in 1..n {
            let parent = rng.gen_range(0..i);
            b.add_link(nodes[parent], nodes[i], random_capacity(rng))
                .expect("tree links are distinct");
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let (xi, yi) = positions[i];
            let (xj, yj) = positions[j];
            let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
            let p = alpha * (-d / (beta * l)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                let _ = b.add_link(nodes[i], nodes[j], random_capacity(rng));
            }
        }
    }
    b.build()
}

fn random_capacity(rng: &mut StdRng) -> Mbps {
    Mbps::new(*CAPACITY_TIERS.as_slice().choose(rng).expect("non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_is_connected_and_deterministic() {
        let a = connected_gnp(20, 0.1, 42);
        let b = connected_gnp(20, 0.1, 42);
        assert!(a.is_connected());
        assert_eq!(a, b);
        assert_eq!(a.node_count(), 20);
        assert!(a.link_count() >= 19);
    }

    #[test]
    fn gnp_different_seeds_differ() {
        let a = connected_gnp(20, 0.2, 1);
        let b = connected_gnp(20, 0.2, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn gnp_zero_probability_is_a_tree() {
        let t = connected_gnp(10, 0.0, 7);
        assert_eq!(t.link_count(), 9);
        assert!(t.is_connected());
    }

    #[test]
    fn gnp_full_probability_is_a_mesh() {
        let t = connected_gnp(6, 1.0, 7);
        assert_eq!(t.link_count(), 15);
    }

    #[test]
    fn waxman_is_connected_and_deterministic() {
        let a = waxman(25, 0.9, 0.9, 11);
        let b = waxman(25, 0.9, 0.9, 11);
        assert!(a.is_connected());
        assert_eq!(a, b);
    }

    #[test]
    fn capacities_come_from_tiers() {
        let t = connected_gnp(15, 0.3, 5);
        for link in t.links() {
            assert!(CAPACITY_TIERS.contains(&link.capacity().as_f64()));
        }
    }

    #[test]
    fn single_node_graphs() {
        assert_eq!(connected_gnp(1, 0.5, 0).node_count(), 1);
        assert_eq!(waxman(1, 0.5, 0.5, 0).node_count(), 1);
    }
}
