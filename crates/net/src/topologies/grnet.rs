//! The Greek Research & Technology Network (GRNET) backbone of the paper's
//! case study, together with the recorded SNMP readings of its Table 2 and
//! the published Link Validation Numbers of its Table 3.
//!
//! Node naming follows the paper's Figure 6: `U1` Athens, `U2` Patra,
//! `U3` Ioannina, `U4` Thessaloniki, `U5` Xanthi, `U6` Heraklio. The seven
//! backbone links and their capacities come from Table 2.

use crate::ids::{LinkId, NodeId};
use crate::lvn::LinkWeights;
use crate::snapshot::TrafficSnapshot;
use crate::topology::{Topology, TopologyBuilder};
use crate::units::{Fraction, Mbps};

use serde::{Deserialize, Serialize};

/// The four times of day at which the paper sampled SNMP statistics.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeOfDay {
    /// 8:00 am.
    T0800,
    /// 10:00 am.
    T1000,
    /// 4:00 pm.
    T1600,
    /// 6:00 pm.
    T1800,
}

impl TimeOfDay {
    /// All sampled times in chronological order.
    pub const ALL: [TimeOfDay; 4] = [
        TimeOfDay::T0800,
        TimeOfDay::T1000,
        TimeOfDay::T1600,
        TimeOfDay::T1800,
    ];

    /// The label used in the paper's tables, e.g. `"8am"`.
    pub fn label(self) -> &'static str {
        match self {
            TimeOfDay::T0800 => "8am",
            TimeOfDay::T1000 => "10am",
            TimeOfDay::T1600 => "4pm",
            TimeOfDay::T1800 => "6pm",
        }
    }

    /// Column index of this time in the paper's tables (0-based).
    pub fn column(self) -> usize {
        match self {
            TimeOfDay::T0800 => 0,
            TimeOfDay::T1000 => 1,
            TimeOfDay::T1600 => 2,
            TimeOfDay::T1800 => 3,
        }
    }

    /// Hour of day (0–23) for simulation clocks.
    pub fn hour(self) -> u32 {
        match self {
            TimeOfDay::T0800 => 8,
            TimeOfDay::T1000 => 10,
            TimeOfDay::T1600 => 16,
            TimeOfDay::T1800 => 18,
        }
    }
}

/// The six GRNET backbone nodes of the paper's Figure 6.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GrnetNode {
    /// U1 — Athens.
    Athens,
    /// U2 — Patra.
    Patra,
    /// U3 — Ioannina.
    Ioannina,
    /// U4 — Thessaloniki.
    Thessaloniki,
    /// U5 — Xanthi.
    Xanthi,
    /// U6 — Heraklio.
    Heraklio,
}

impl GrnetNode {
    /// All nodes in `U1..U6` order.
    pub const ALL: [GrnetNode; 6] = [
        GrnetNode::Athens,
        GrnetNode::Patra,
        GrnetNode::Ioannina,
        GrnetNode::Thessaloniki,
        GrnetNode::Xanthi,
        GrnetNode::Heraklio,
    ];

    /// The paper's `U`-label, e.g. `"U1"` for Athens.
    pub fn u_label(self) -> &'static str {
        match self {
            GrnetNode::Athens => "U1",
            GrnetNode::Patra => "U2",
            GrnetNode::Ioannina => "U3",
            GrnetNode::Thessaloniki => "U4",
            GrnetNode::Xanthi => "U5",
            GrnetNode::Heraklio => "U6",
        }
    }

    /// The city name.
    pub fn city(self) -> &'static str {
        match self {
            GrnetNode::Athens => "Athens",
            GrnetNode::Patra => "Patra",
            GrnetNode::Ioannina => "Ioannina",
            GrnetNode::Thessaloniki => "Thessaloniki",
            GrnetNode::Xanthi => "Xanthi",
            GrnetNode::Heraklio => "Heraklio",
        }
    }

    fn position(self) -> usize {
        match self {
            GrnetNode::Athens => 0,
            GrnetNode::Patra => 1,
            GrnetNode::Ioannina => 2,
            GrnetNode::Thessaloniki => 3,
            GrnetNode::Xanthi => 4,
            GrnetNode::Heraklio => 5,
        }
    }
}

/// The seven GRNET backbone links of the paper's Table 2, in table order.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GrnetLink {
    /// Patra–Athens, 2 Mbit.
    PatraAthens,
    /// Patra–Ioannina, 2 Mbit.
    PatraIoannina,
    /// Thessaloniki–Athens, 18 Mbit.
    ThessalonikiAthens,
    /// Thessaloniki–Xanthi, 2 Mbit.
    ThessalonikiXanthi,
    /// Thessaloniki–Ioannina, 2 Mbit.
    ThessalonikiIoannina,
    /// Athens–Heraklio, 18 Mbit.
    AthensHeraklio,
    /// Xanthi–Heraklio, 2 Mbit.
    XanthiHeraklio,
}

impl GrnetLink {
    /// All links in Table 2 order.
    pub const ALL: [GrnetLink; 7] = [
        GrnetLink::PatraAthens,
        GrnetLink::PatraIoannina,
        GrnetLink::ThessalonikiAthens,
        GrnetLink::ThessalonikiXanthi,
        GrnetLink::ThessalonikiIoannina,
        GrnetLink::AthensHeraklio,
        GrnetLink::XanthiHeraklio,
    ];

    /// The two endpoints.
    pub fn endpoints(self) -> (GrnetNode, GrnetNode) {
        match self {
            GrnetLink::PatraAthens => (GrnetNode::Patra, GrnetNode::Athens),
            GrnetLink::PatraIoannina => (GrnetNode::Patra, GrnetNode::Ioannina),
            GrnetLink::ThessalonikiAthens => (GrnetNode::Thessaloniki, GrnetNode::Athens),
            GrnetLink::ThessalonikiXanthi => (GrnetNode::Thessaloniki, GrnetNode::Xanthi),
            GrnetLink::ThessalonikiIoannina => (GrnetNode::Thessaloniki, GrnetNode::Ioannina),
            GrnetLink::AthensHeraklio => (GrnetNode::Athens, GrnetNode::Heraklio),
            GrnetLink::XanthiHeraklio => (GrnetNode::Xanthi, GrnetNode::Heraklio),
        }
    }

    /// Capacity per Table 2.
    pub fn capacity(self) -> Mbps {
        match self {
            GrnetLink::ThessalonikiAthens | GrnetLink::AthensHeraklio => Mbps::new(18.0),
            _ => Mbps::new(2.0),
        }
    }

    /// The row label of the paper's tables, e.g. `"Patra-Athens"`.
    pub fn label(self) -> &'static str {
        match self {
            GrnetLink::PatraAthens => "Patra-Athens",
            GrnetLink::PatraIoannina => "Patra-Ioannina",
            GrnetLink::ThessalonikiAthens => "Thessaloniki-Athens",
            GrnetLink::ThessalonikiXanthi => "Thessaloniki-Xanthi",
            GrnetLink::ThessalonikiIoannina => "Thessaloniki-Ioannina",
            GrnetLink::AthensHeraklio => "Athens-Heraklio",
            GrnetLink::XanthiHeraklio => "Xanthi-Heraklio",
        }
    }

    fn position(self) -> usize {
        match self {
            GrnetLink::PatraAthens => 0,
            GrnetLink::PatraIoannina => 1,
            GrnetLink::ThessalonikiAthens => 2,
            GrnetLink::ThessalonikiXanthi => 3,
            GrnetLink::ThessalonikiIoannina => 4,
            GrnetLink::AthensHeraklio => 5,
            GrnetLink::XanthiHeraklio => 6,
        }
    }
}

/// One cell of the paper's Table 2: combined in+out traffic and the
/// utilization percentage as printed (the percentages are rounded in the
/// paper, and its Table 3 was computed from the rounded values).
#[derive(Debug, Copy, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Cell {
    /// Combined in+out traffic in Mbps.
    pub traffic: Mbps,
    /// Utilization as printed in the paper, in percent.
    pub utilization_percent: f64,
}

/// Table 2 of the paper: `[link][time]` traffic and utilization readings.
///
/// Rows follow [`GrnetLink::ALL`], columns [`TimeOfDay::ALL`]. Traffic is
/// in Mbps ("100 bits" rows are 0.0001 Mb etc., consistent with the
/// printed percentages).
pub const TABLE2: [[Table2Cell; 4]; 7] = {
    const fn cell(traffic: f64, percent: f64) -> Table2Cell {
        Table2Cell {
            traffic: Mbps::from_const(traffic),
            utilization_percent: percent,
        }
    }
    [
        // Patra-Athens (2 Mbit)
        [
            cell(0.2, 10.0),
            cell(1.82, 91.0),
            cell(1.82, 91.0),
            cell(1.82, 91.0),
        ],
        // Patra-Ioannina (2 Mbit)
        [
            cell(0.0001, 0.005),
            cell(0.00017, 0.0085),
            cell(0.2, 10.0),
            cell(0.24, 12.0),
        ],
        // Thessaloniki-Athens (18 Mb)
        [
            cell(1.7, 9.4),
            cell(7.0, 38.8),
            cell(9.8, 54.4),
            cell(9.6, 53.3),
        ],
        // Thessaloniki-Xanthi (2 Mb)
        [
            cell(0.48, 24.0),
            cell(0.52, 26.0),
            cell(0.75, 37.5),
            cell(0.6, 30.0),
        ],
        // Thessaloniki-Ioannina (2 Mb)
        [
            cell(0.3, 15.0),
            cell(1.48, 74.0),
            cell(1.86, 93.0),
            cell(1.3, 65.0),
        ],
        // Athens-Heraklio (18 Mb)
        [
            cell(0.5, 2.7),
            cell(2.5, 13.8),
            cell(5.5, 30.5),
            cell(6.0, 33.3),
        ],
        // Xanthi-Heraklio (2 Mb)
        [
            cell(0.0001, 0.005),
            cell(0.00015, 0.005),
            cell(0.0002, 0.01),
            cell(0.00015, 0.0075),
        ],
    ]
};

/// Table 3 of the paper: the published Link Validation Numbers,
/// `[link][time]`, rows in [`GrnetLink::ALL`] order.
///
/// Note: the paper computed these from intermediately-rounded values, so a
/// few cells differ from the exact equations (1)–(4) by up to ~0.006 (see
/// DESIGN.md §5 and EXPERIMENTS.md).
pub const TABLE3_LVN: [[f64; 4]; 7] = [
    [0.083, 0.632, 0.687, 0.697],      // Patra-Athens
    [0.07501, 0.450017, 0.535, 0.539], // Patra-Ioannina
    [0.2819, 1.1075, 1.5433, 1.4824],  // Thessaloniki-Athens
    [0.168, 0.4611, 0.6391, 0.583],    // Thessaloniki-Xanthi
    [0.1427, 0.5571, 0.7501, 0.653],   // Thessaloniki-Ioannina
    [0.1116, 0.5462, 0.999, 1.0574],   // Athens-Heraklio
    [0.1201, 0.13001, 0.275015, 0.3],  // Xanthi-Heraklio
];

/// The GRNET backbone topology plus id lookup tables.
///
/// # Examples
///
/// ```
/// use vod_net::topologies::grnet::{Grnet, GrnetLink, GrnetNode, TimeOfDay};
///
/// let grnet = Grnet::new();
/// assert_eq!(grnet.topology().node_count(), 6);
/// assert_eq!(grnet.topology().link_count(), 7);
/// let snap = grnet.snapshot(TimeOfDay::T1000);
/// let link = grnet.link(GrnetLink::ThessalonikiAthens);
/// assert!((snap.utilization(grnet.topology(), link).get() - 0.388).abs() < 1e-9);
/// assert_eq!(grnet.topology().node(grnet.node(GrnetNode::Athens)).name(), "U1");
/// ```
#[derive(Debug, Clone)]
pub struct Grnet {
    topology: Topology,
    nodes: [NodeId; 6],
    links: [LinkId; 7],
}

impl Default for Grnet {
    fn default() -> Self {
        Self::new()
    }
}

impl Grnet {
    /// Builds the GRNET backbone (nodes named `U1..U6` as in Figure 6).
    pub fn new() -> Self {
        let mut b = TopologyBuilder::new();
        let mut nodes = [NodeId::new(0); 6];
        for n in GrnetNode::ALL {
            nodes[n.position()] = b.add_node(n.u_label());
        }
        let mut links = [LinkId::new(0); 7];
        for l in GrnetLink::ALL {
            let (a, c) = l.endpoints();
            links[l.position()] = b
                .add_link(nodes[a.position()], nodes[c.position()], l.capacity())
                .expect("GRNET links are well-formed");
        }
        Grnet {
            topology: b.build(),
            nodes,
            links,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The [`NodeId`] of a GRNET city.
    pub fn node(&self, node: GrnetNode) -> NodeId {
        self.nodes[node.position()]
    }

    /// The [`LinkId`] of a GRNET backbone link.
    pub fn link(&self, link: GrnetLink) -> LinkId {
        self.links[link.position()]
    }

    /// Reverse lookup from a [`NodeId`] to the GRNET city.
    pub fn grnet_node(&self, id: NodeId) -> Option<GrnetNode> {
        GrnetNode::ALL.into_iter().find(|&n| self.node(n) == id)
    }

    /// Reverse lookup from a [`LinkId`] to the GRNET link.
    pub fn grnet_link(&self, id: LinkId) -> Option<GrnetLink> {
        GrnetLink::ALL.into_iter().find(|&l| self.link(l) == id)
    }

    /// The Table 2 reading for one link at one time.
    pub fn table2(&self, link: GrnetLink, time: TimeOfDay) -> Table2Cell {
        TABLE2[link.position()][time.column()]
    }

    /// Builds the traffic snapshot recorded in Table 2 for `time`,
    /// carrying both the raw traffic volumes (used by equation (2)) and the
    /// printed utilization percentages (used by equation (3), matching how
    /// the paper computed its Table 3).
    pub fn snapshot(&self, time: TimeOfDay) -> TrafficSnapshot {
        let mut snap = TrafficSnapshot::zero(&self.topology);
        for l in GrnetLink::ALL {
            let cell = self.table2(l, time);
            let id = self.link(l);
            snap.set_used(id, cell.traffic);
            snap.set_explicit_utilization(id, Fraction::from_percent(cell.utilization_percent));
        }
        snap
    }

    /// The paper's published Table 3 LVN weights for `time`, as a weight
    /// table usable by Dijkstra — for reproducing Tables 4/5 exactly as
    /// printed.
    pub fn paper_table3_weights(&self, time: TimeOfDay) -> LinkWeights {
        let mut w = vec![0.0; self.topology.link_count()];
        for l in GrnetLink::ALL {
            w[self.link(l).index()] = TABLE3_LVN[l.position()][time.column()];
        }
        LinkWeights::from_vec(w)
    }

    /// The paper's published Table 3 LVN for one link and time.
    pub fn paper_table3_lvn(&self, link: GrnetLink, time: TimeOfDay) -> f64 {
        TABLE3_LVN[link.position()][time.column()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::lvn::{LvnComputer, LvnParams};

    #[test]
    fn topology_matches_figure6() {
        let g = Grnet::new();
        assert_eq!(g.topology().node_count(), 6);
        assert_eq!(g.topology().link_count(), 7);
        assert!(g.topology().is_connected());
        // Degrees: Athens 3 (Patra, Thessaloniki, Heraklio), Thessaloniki 3,
        // Patra 2, Ioannina 2, Xanthi 2, Heraklio 2.
        assert_eq!(g.topology().degree(g.node(GrnetNode::Athens)), 3);
        assert_eq!(g.topology().degree(g.node(GrnetNode::Thessaloniki)), 3);
        assert_eq!(g.topology().degree(g.node(GrnetNode::Patra)), 2);
        assert_eq!(g.topology().degree(g.node(GrnetNode::Ioannina)), 2);
        assert_eq!(g.topology().degree(g.node(GrnetNode::Xanthi)), 2);
        assert_eq!(g.topology().degree(g.node(GrnetNode::Heraklio)), 2);
    }

    #[test]
    fn node_labels_match_paper() {
        let g = Grnet::new();
        assert_eq!(g.topology().node(g.node(GrnetNode::Athens)).name(), "U1");
        assert_eq!(g.topology().node(g.node(GrnetNode::Patra)).name(), "U2");
        assert_eq!(g.topology().node(g.node(GrnetNode::Ioannina)).name(), "U3");
        assert_eq!(
            g.topology().node(g.node(GrnetNode::Thessaloniki)).name(),
            "U4"
        );
        assert_eq!(g.topology().node(g.node(GrnetNode::Xanthi)).name(), "U5");
        assert_eq!(g.topology().node(g.node(GrnetNode::Heraklio)).name(), "U6");
    }

    #[test]
    fn capacities_match_table2() {
        let g = Grnet::new();
        for l in GrnetLink::ALL {
            assert_eq!(g.topology().link(g.link(l)).capacity(), l.capacity());
        }
        assert_eq!(GrnetLink::ThessalonikiAthens.capacity(), Mbps::new(18.0));
        assert_eq!(GrnetLink::PatraAthens.capacity(), Mbps::new(2.0));
    }

    #[test]
    fn table2_traffic_is_consistent_with_printed_percentages() {
        // For every cell, traffic/capacity should be within rounding
        // distance of the printed percentage (the paper rounds to at most
        // one decimal in percent, except the sub-kb readings).
        let g = Grnet::new();
        for l in GrnetLink::ALL {
            for t in TimeOfDay::ALL {
                let cell = g.table2(l, t);
                let derived = cell.traffic / l.capacity() * 100.0;
                let printed = cell.utilization_percent;
                assert!(
                    (derived - printed).abs() <= 0.06 + printed * 0.01,
                    "{} @ {}: derived {derived}% vs printed {printed}%",
                    l.label(),
                    t.label()
                );
            }
        }
    }

    #[test]
    fn snapshot_reports_printed_percentages() {
        let g = Grnet::new();
        let snap = g.snapshot(TimeOfDay::T0800);
        let ta = g.link(GrnetLink::ThessalonikiAthens);
        assert!((snap.utilization(g.topology(), ta).get() - 0.094).abs() < 1e-12);
        assert_eq!(snap.used(ta), Mbps::new(1.7));
    }

    #[test]
    fn reverse_lookups() {
        let g = Grnet::new();
        for n in GrnetNode::ALL {
            assert_eq!(g.grnet_node(g.node(n)), Some(n));
        }
        for l in GrnetLink::ALL {
            assert_eq!(g.grnet_link(g.link(l)), Some(l));
        }
        assert_eq!(g.grnet_node(NodeId::new(77)), None);
    }

    /// The core scientific check: equations (1)–(4) over the Table 2 data
    /// reproduce the paper's Table 3 within the paper's own rounding slack.
    #[test]
    fn computed_lvn_matches_paper_table3() {
        let g = Grnet::new();
        for t in TimeOfDay::ALL {
            let snap = g.snapshot(t);
            let lvn = LvnComputer::new(g.topology(), &snap, LvnParams::default());
            for l in GrnetLink::ALL {
                let computed = lvn.lvn(g.link(l));
                let paper = g.paper_table3_lvn(l, t);
                assert!(
                    (computed - paper).abs() <= 0.006,
                    "{} @ {}: computed {computed:.5} vs paper {paper:.5}",
                    l.label(),
                    t.label()
                );
            }
        }
    }

    /// Spot-check the exactly-reproducible Table 3 cells (no intermediate
    /// rounding in the paper for these).
    #[test]
    fn exact_table3_cells() {
        let g = Grnet::new();
        let snap = g.snapshot(TimeOfDay::T0800);
        let lvn = LvnComputer::new(g.topology(), &snap, LvnParams::default());
        let cases = [
            (GrnetLink::PatraAthens, 0.083, 5e-4),
            (GrnetLink::PatraIoannina, 0.07501, 5e-5),
            (GrnetLink::ThessalonikiXanthi, 0.168, 5e-4),
            (GrnetLink::ThessalonikiIoannina, 0.1427, 5e-4),
            (GrnetLink::XanthiHeraklio, 0.1201, 5e-4),
        ];
        for (l, expected, tol) in cases {
            let computed = lvn.lvn(g.link(l));
            assert!(
                (computed - expected).abs() < tol,
                "{}: {computed} vs {expected}",
                l.label()
            );
        }
    }

    /// Experiment B's published shortest paths fall out of Dijkstra over
    /// the paper's own Table 3 weights.
    #[test]
    fn experiment_b_paths_from_paper_weights() {
        let g = Grnet::new();
        let w = g.paper_table3_weights(TimeOfDay::T1000);
        let paths = dijkstra(g.topology(), &w, g.node(GrnetNode::Patra)).unwrap();
        let d4 = paths.distance_to(g.node(GrnetNode::Thessaloniki)).unwrap();
        let d5 = paths.distance_to(g.node(GrnetNode::Xanthi)).unwrap();
        assert!((d4 - 1.007).abs() < 5e-4, "D4 = {d4}");
        assert!((d5 - 1.308).abs() < 5e-4, "D5 = {d5}");
        let route4 = paths.route_to(g.node(GrnetNode::Thessaloniki)).unwrap();
        let names: Vec<&str> = route4
            .nodes()
            .iter()
            .map(|&n| g.topology().node(n).name())
            .collect();
        assert_eq!(names, ["U2", "U3", "U4"]);
    }

    #[test]
    fn labels_and_metadata() {
        assert_eq!(TimeOfDay::T0800.label(), "8am");
        assert_eq!(TimeOfDay::T1800.hour(), 18);
        assert_eq!(GrnetNode::Xanthi.u_label(), "U5");
        assert_eq!(GrnetNode::Xanthi.city(), "Xanthi");
        assert_eq!(GrnetLink::AthensHeraklio.label(), "Athens-Heraklio");
        assert_eq!(TimeOfDay::ALL.len(), 4);
        assert_eq!(GrnetNode::ALL.len(), 6);
        assert_eq!(GrnetLink::ALL.len(), 7);
    }
}
