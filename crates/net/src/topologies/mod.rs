//! Ready-made topologies: the paper's GRNET case study plus synthetic
//! generators for scale and robustness experiments.

pub mod grnet;
pub mod patterns;
pub mod random;
