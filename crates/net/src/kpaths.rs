//! K-shortest loopless paths (Yen's algorithm).
//!
//! The Virtual Routing Algorithm commits to *the* least-cost path; path
//! diversity is what anti-herding variants (and the E2 analysis) need.
//! [`k_shortest_paths`] enumerates the `k` cheapest simple paths between
//! two nodes under a [`LinkWeights`] table, in nondecreasing cost order,
//! using Yen's algorithm over the crate's Dijkstra.

use crate::dijkstra::dijkstra;
use crate::error::NetError;
use crate::ids::NodeId;
use crate::lvn::LinkWeights;
use crate::route::Route;
use crate::topology::Topology;

/// Returns up to `k` cheapest loopless routes from `source` to `target`,
/// sorted by cost (ties broken deterministically by node sequence).
///
/// Returns an empty vector when `target` is unreachable. The first route,
/// when present, is exactly the Dijkstra shortest path.
///
/// # Errors
///
/// Propagates weight-validation errors ([`NetError::NegativeWeight`],
/// [`NetError::WeightCountMismatch`], …) and unknown node ids.
///
/// # Examples
///
/// ```
/// use vod_net::kpaths::k_shortest_paths;
/// use vod_net::lvn::LinkWeights;
/// use vod_net::topologies::grnet::{Grnet, GrnetNode, TimeOfDay};
///
/// # fn main() -> Result<(), vod_net::NetError> {
/// let grnet = Grnet::new();
/// let weights = grnet.paper_table3_weights(TimeOfDay::T1000);
/// let paths = k_shortest_paths(
///     grnet.topology(),
///     &weights,
///     grnet.node(GrnetNode::Patra),
///     grnet.node(GrnetNode::Thessaloniki),
///     3,
/// )?;
/// assert_eq!(paths[0].display_with(grnet.topology()).to_string(), "U2,U3,U4");
/// assert!(paths.windows(2).all(|w| w[0].cost() <= w[1].cost()));
/// # Ok(())
/// # }
/// ```
pub fn k_shortest_paths(
    topology: &Topology,
    weights: &LinkWeights,
    source: NodeId,
    target: NodeId,
    k: usize,
) -> Result<Vec<Route>, NetError> {
    weights.validate(topology)?;
    topology.try_node(source)?;
    topology.try_node(target)?;
    if k == 0 {
        return Ok(Vec::new());
    }

    let shortest = match dijkstra(topology, weights, source)?.route_to(target) {
        Some(r) => r,
        None => return Ok(Vec::new()),
    };
    let mut accepted: Vec<Route> = vec![shortest];
    // Candidate pool; kept sorted on extraction.
    let mut candidates: Vec<Route> = Vec::new();

    while accepted.len() < k {
        let last = accepted.last().expect("at least the shortest path");
        // Each prefix of the last accepted path spawns a spur.
        for spur_idx in 0..last.nodes().len() - 1 {
            let spur_node = last.nodes()[spur_idx];
            let root_nodes = &last.nodes()[..=spur_idx];
            let root_links = &last.links()[..spur_idx];

            // Mask links used by accepted paths sharing this root, and
            // every root node except the spur node, by inflating weights.
            let mut masked = weights.clone();
            for path in &accepted {
                if path.nodes().len() > spur_idx && path.nodes()[..=spur_idx] == *root_nodes {
                    masked.set_weight(path.links()[spur_idx], f64::INFINITY);
                }
            }
            for &node in &root_nodes[..spur_idx] {
                for inc in topology.adjacent(node) {
                    masked.set_weight(inc.link, f64::INFINITY);
                }
            }

            let spur = match dijkstra_infinity_ok(topology, &masked, spur_node)?.route_to(target) {
                Some(r) if r.cost().is_finite() => r,
                _ => continue,
            };

            // Total path = root + spur.
            let mut nodes = root_nodes.to_vec();
            nodes.extend_from_slice(&spur.nodes()[1..]);
            let mut links = root_links.to_vec();
            links.extend_from_slice(spur.links());
            // Skip paths with repeated nodes (loops through the root).
            let mut seen = nodes.clone();
            seen.sort();
            seen.dedup();
            if seen.len() != nodes.len() {
                continue;
            }
            let cost: f64 = links.iter().map(|&l| weights.weight(l)).sum();
            let candidate = Route::new(nodes, links, cost);
            if !accepted.contains(&candidate) && !candidates.contains(&candidate) {
                candidates.push(candidate);
            }
        }
        // Extract the cheapest candidate.
        candidates.sort_by(|a, b| {
            a.cost()
                .total_cmp(&b.cost())
                .then_with(|| a.nodes().cmp(b.nodes()))
        });
        if candidates.is_empty() {
            break;
        }
        accepted.push(candidates.remove(0));
    }
    Ok(accepted)
}

/// Dijkstra that tolerates the infinite masking weights (they are never
/// negative/NaN, but `validate` must be skipped for the +∞ entries).
fn dijkstra_infinity_ok(
    topology: &Topology,
    weights: &LinkWeights,
    source: NodeId,
) -> Result<crate::dijkstra::ShortestPaths, NetError> {
    // Replace +∞ with a huge finite sentinel that passes validation but
    // can never be part of a finite-cost best path on any real topology.
    let sentinel = 1e30;
    let finite: LinkWeights = weights
        .iter()
        .map(|(_, w)| if w.is_finite() { w } else { sentinel })
        .collect();
    let paths = dijkstra(topology, &finite, source)?;
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies::grnet::{Grnet, GrnetNode, TimeOfDay};
    use crate::topology::TopologyBuilder;
    use crate::units::Mbps;

    #[test]
    fn grnet_alternatives_in_cost_order() {
        let g = Grnet::new();
        let weights = g.paper_table3_weights(TimeOfDay::T1000);
        let paths = k_shortest_paths(
            g.topology(),
            &weights,
            g.node(GrnetNode::Patra),
            g.node(GrnetNode::Thessaloniki),
            4,
        )
        .unwrap();
        assert!(paths.len() >= 2);
        // Best = the Table 5 route.
        assert_eq!(paths[0].display_with(g.topology()).to_string(), "U2,U3,U4");
        assert!((paths[0].cost() - 1.007117).abs() < 1e-9);
        // Second best: via Athens (0.632 + 1.1075 = 1.7395).
        assert_eq!(paths[1].display_with(g.topology()).to_string(), "U2,U1,U4");
        assert!((paths[1].cost() - 1.7395).abs() < 1e-9);
        // Monotone, loopless, valid.
        for w in paths.windows(2) {
            assert!(w[0].cost() <= w[1].cost() + 1e-12);
        }
        for p in &paths {
            assert!(p.is_valid_in(g.topology()));
            let mut nodes = p.nodes().to_vec();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), p.nodes().len(), "loopless");
        }
    }

    #[test]
    fn k_larger_than_path_count_returns_all() {
        // A path graph has exactly one simple path between its ends.
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let m = b.add_node("m");
        let c = b.add_node("c");
        b.add_link(a, m, Mbps::new(1.0)).unwrap();
        b.add_link(m, c, Mbps::new(1.0)).unwrap();
        let topo = b.build();
        let w = LinkWeights::uniform(2, 1.0);
        let paths = k_shortest_paths(&topo, &w, a, c, 10).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hops(), 2);
    }

    #[test]
    fn unreachable_and_degenerate_cases() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let island = b.add_node("island");
        let topo = b.build();
        let w = LinkWeights::uniform(0, 1.0);
        assert!(k_shortest_paths(&topo, &w, a, island, 3)
            .unwrap()
            .is_empty());
        assert!(k_shortest_paths(&topo, &w, a, a, 0).unwrap().is_empty());
        // Source == target: the trivial path.
        let trivial = k_shortest_paths(&topo, &w, a, a, 2).unwrap();
        assert_eq!(trivial.len(), 1);
        assert_eq!(trivial[0].hops(), 0);
    }

    #[test]
    fn diamond_enumerates_both_sides() {
        let mut b = TopologyBuilder::new();
        let s = b.add_node("s");
        let x = b.add_node("x");
        let y = b.add_node("y");
        let t = b.add_node("t");
        let sx = b.add_link(s, x, Mbps::new(1.0)).unwrap();
        let sy = b.add_link(s, y, Mbps::new(1.0)).unwrap();
        let xt = b.add_link(x, t, Mbps::new(1.0)).unwrap();
        let yt = b.add_link(y, t, Mbps::new(1.0)).unwrap();
        let topo = b.build();
        let mut w = LinkWeights::uniform(4, 1.0);
        w.set_weight(sx, 0.4);
        w.set_weight(xt, 0.4);
        w.set_weight(sy, 0.6);
        w.set_weight(yt, 0.6);
        let paths = k_shortest_paths(&topo, &w, s, t, 5).unwrap();
        assert_eq!(paths.len(), 2);
        assert!((paths[0].cost() - 0.8).abs() < 1e-12);
        assert!((paths[1].cost() - 1.2).abs() < 1e-12);
        assert!(paths[0].contains_node(x));
        assert!(paths[1].contains_node(y));
    }

    /// Exhaustive simple-path enumeration for cross-validation.
    fn all_simple_paths(
        topology: &Topology,
        weights: &LinkWeights,
        source: NodeId,
        target: NodeId,
    ) -> Vec<(f64, Vec<NodeId>)> {
        fn dfs(
            topology: &Topology,
            weights: &LinkWeights,
            target: NodeId,
            nodes: &mut Vec<NodeId>,
            cost: f64,
            out: &mut Vec<(f64, Vec<NodeId>)>,
        ) {
            let cur = *nodes.last().expect("non-empty");
            if cur == target {
                out.push((cost, nodes.clone()));
                return;
            }
            for inc in topology.adjacent(cur) {
                if !nodes.contains(&inc.neighbor) {
                    nodes.push(inc.neighbor);
                    dfs(
                        topology,
                        weights,
                        target,
                        nodes,
                        cost + weights.weight(inc.link),
                        out,
                    );
                    nodes.pop();
                }
            }
        }
        let mut out = Vec::new();
        let mut nodes = vec![source];
        dfs(topology, weights, target, &mut nodes, 0.0, &mut out);
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        out
    }

    mod proptests {
        use super::*;
        use crate::topologies::random::connected_gnp;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(40))]

            /// Yen's results match exhaustive enumeration: same count (up
            /// to k) and the same cost sequence.
            #[test]
            fn matches_exhaustive_enumeration(
                n in 3usize..8,
                p in 0.1f64..0.5,
                seed in 0u64..500,
                k in 1usize..6,
            ) {
                let topo = connected_gnp(n, p, seed);
                let weights: LinkWeights = topo
                    .link_ids()
                    .map(|l| 0.1 + ((l.index() * 7) % 11) as f64 * 0.13)
                    .collect();
                let source = NodeId::new(0);
                let target = NodeId::new((n - 1) as u32);
                let yen = k_shortest_paths(&topo, &weights, source, target, k).unwrap();
                let brute = all_simple_paths(&topo, &weights, source, target);
                prop_assert_eq!(yen.len(), brute.len().min(k));
                for (route, (cost, _)) in yen.iter().zip(brute.iter()) {
                    prop_assert!(
                        (route.cost() - cost).abs() < 1e-9,
                        "cost mismatch: {} vs {}",
                        route.cost(),
                        cost
                    );
                    prop_assert!(route.is_valid_in(&topo));
                }
            }
        }
    }

    #[test]
    fn negative_weights_rejected() {
        let g = Grnet::new();
        let w = LinkWeights::uniform(7, -1.0);
        assert!(k_shortest_paths(
            g.topology(),
            &w,
            g.node(GrnetNode::Patra),
            g.node(GrnetNode::Athens),
            2
        )
        .is_err());
    }
}
