//! The Link Validation Number (LVN) — the paper's link-weighting scheme.
//!
//! The Virtual Routing Algorithm weights every network link with a numeric
//! cost, the *Link Validation Number*, computed from four equations
//! (numbering follows the paper):
//!
//! ```text
//! (1)  LVN_i = max{NV_a, NV_b} + LU_i
//! (2)  NV_x  = Σ UBW_m / Σ LBW_m    over links m adjacent to node x
//! (3)  LU_i  = LT_i · LV_i
//! (4)  LV_i  = LinkBandwidth(Mbps) / NormalizationConstant
//! ```
//!
//! where `UBW` is the used bandwidth of a link, `LBW` its total bandwidth,
//! and `LT` the link's traffic (fraction of used over total bandwidth).
//! The first term of (1) is "the performance burden imposed by the adjacent
//! to the link nodes", the second "the link's traffic aggravation". The
//! suggested normalization constant is "an integer with a value approaching
//! 10".
//!
//! The paper describes the weight as "negative" in the sense of *penalty*
//! (larger is worse); numerically all values are non-negative, as Dijkstra
//! requires, and every number in the paper's tables is positive.
//!
//! [`NodeCombiner`] generalizes the `max` in equation (1) so the design
//! choice can be ablated (see DESIGN.md §6).

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::ids::{LinkId, NodeId};
use crate::snapshot::TrafficSnapshot;
use crate::topology::Topology;
use crate::units::Mbps;

/// How the two endpoint node-validation values are combined in
/// equation (1). The paper uses [`NodeCombiner::Max`].
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NodeCombiner {
    /// `max{NV_a, NV_b}` — the paper's choice.
    #[default]
    Max,
    /// Arithmetic mean of the two node validations.
    Avg,
    /// Sum of the two node validations.
    Sum,
}

impl NodeCombiner {
    pub(crate) fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            NodeCombiner::Max => a.max(b),
            NodeCombiner::Avg => (a + b) / 2.0,
            NodeCombiner::Sum => a + b,
        }
    }
}

/// Parameters of the LVN computation.
///
/// # Examples
///
/// ```
/// use vod_net::lvn::LvnParams;
///
/// let params = LvnParams::default();
/// assert_eq!(params.normalization_constant, 10.0);
/// ```
#[derive(Debug, Copy, Clone, PartialEq, Serialize, Deserialize)]
pub struct LvnParams {
    /// The normalization constant of equation (4); the paper suggests an
    /// integer approaching 10.
    pub normalization_constant: f64,
    /// How endpoint node validations are combined in equation (1).
    pub combiner: NodeCombiner,
}

impl Default for LvnParams {
    fn default() -> Self {
        LvnParams {
            normalization_constant: 10.0,
            combiner: NodeCombiner::Max,
        }
    }
}

impl LvnParams {
    /// Parameters with a custom normalization constant and the paper's
    /// `max` combiner.
    ///
    /// # Panics
    ///
    /// Panics if `normalization_constant` is not strictly positive.
    pub fn with_normalization(normalization_constant: f64) -> Self {
        assert!(
            normalization_constant > 0.0 && normalization_constant.is_finite(),
            "normalization constant must be positive and finite"
        );
        LvnParams {
            normalization_constant,
            ..LvnParams::default()
        }
    }
}

/// A table of per-link weights, indexed by [`LinkId`], fed to
/// [Dijkstra](crate::dijkstra::dijkstra).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkWeights {
    weights: Vec<f64>,
}

impl LinkWeights {
    /// Creates a weight table from per-link values in [`LinkId`] order.
    pub fn from_vec(weights: Vec<f64>) -> Self {
        LinkWeights { weights }
    }

    /// Creates a uniform weight table (e.g. weight 1 per link gives
    /// hop-count routing).
    pub fn uniform(link_count: usize, weight: f64) -> Self {
        LinkWeights {
            weights: vec![weight; link_count],
        }
    }

    /// Number of links covered.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns true if the table covers no links.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Returns the weight of `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn weight(&self, link: LinkId) -> f64 {
        self.weights[link.index()]
    }

    /// Sets the weight of `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn set_weight(&mut self, link: LinkId, weight: f64) {
        self.weights[link.index()] = weight;
    }

    /// The raw weight values in [`LinkId`] order. Used by the routing
    /// engine to maintain its zero-weight count (the gate for dynamic
    /// shortest-path-tree repair; see `DESIGN.md` §16) without an
    /// iterator adapter in the hot path.
    pub fn values(&self) -> &[f64] {
        &self.weights
    }

    /// Iterates over `(link, weight)` pairs in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (LinkId, f64)> + '_ {
        self.weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (LinkId::new(i as u32), w))
    }

    /// Validates the table against a topology: matching length, no
    /// negative or NaN weights.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::WeightCountMismatch`], [`NetError::NegativeWeight`]
    /// or [`NetError::InvalidWeight`].
    pub fn validate(&self, topology: &Topology) -> Result<(), NetError> {
        if self.weights.len() != topology.link_count() {
            return Err(NetError::WeightCountMismatch {
                expected: topology.link_count(),
                actual: self.weights.len(),
            });
        }
        for (link, w) in self.iter() {
            if w.is_nan() {
                return Err(NetError::InvalidWeight(link));
            }
            if w < 0.0 {
                return Err(NetError::NegativeWeight(link, w));
            }
        }
        Ok(())
    }
}

impl From<Vec<f64>> for LinkWeights {
    fn from(weights: Vec<f64>) -> Self {
        LinkWeights::from_vec(weights)
    }
}

impl FromIterator<f64> for LinkWeights {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        LinkWeights::from_vec(iter.into_iter().collect())
    }
}

/// Computes Link Validation Numbers for one topology + traffic snapshot.
///
/// # Examples
///
/// Reproduce the paper's worked example of Figure 4 / Table 3: the
/// Patra–Athens link at 8am has `NV_Athens = 2.4 / 38 ≈ 0.0632`,
/// `LU = 0.10 · 0.2 = 0.02`, so `LVN ≈ 0.083`.
///
/// ```
/// use vod_net::lvn::{LvnComputer, LvnParams};
/// use vod_net::topologies::grnet::{Grnet, GrnetLink, TimeOfDay};
///
/// let grnet = Grnet::new();
/// let snap = grnet.snapshot(TimeOfDay::T0800);
/// let lvn = LvnComputer::new(grnet.topology(), &snap, LvnParams::default());
/// let value = lvn.lvn(grnet.link(GrnetLink::PatraAthens));
/// assert!((value - 0.083).abs() < 0.001);
/// ```
#[derive(Debug, Clone)]
pub struct LvnComputer<'a> {
    topology: &'a Topology,
    snapshot: &'a TrafficSnapshot,
    params: LvnParams,
    node_workload: Option<Vec<f64>>,
}

impl<'a> LvnComputer<'a> {
    /// Creates a computer over a topology and a traffic snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was built for a topology with a different
    /// number of links. Use [`LvnComputer::try_new`] to handle the
    /// mismatch as a [`NetError`] instead.
    pub fn new(topology: &'a Topology, snapshot: &'a TrafficSnapshot, params: LvnParams) -> Self {
        Self::try_new(topology, snapshot, params).expect("snapshot must match topology")
    }

    /// Fallible variant of [`LvnComputer::new`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::WeightCountMismatch`] if the snapshot covers a
    /// different number of links than `topology` — the same error
    /// [`LinkWeights::validate`] reports, so callers can treat topology /
    /// snapshot / weight-table mismatches uniformly.
    pub fn try_new(
        topology: &'a Topology,
        snapshot: &'a TrafficSnapshot,
        params: LvnParams,
    ) -> Result<Self, NetError> {
        snapshot.check_matches(topology)?;
        Ok(LvnComputer {
            topology,
            snapshot,
            params,
            node_workload: None,
        })
    }

    /// Adds per-node workload penalties to the node validation — the
    /// paper's *future work*: "we must make clear what the role of every
    /// Server configuration factor (CPU speed, available RAM etc.) is to
    /// our Video service". `workload[n]` (a dimensionless load figure,
    /// e.g. normalized CPU utilization) is added to `NV_n`.
    ///
    /// # Panics
    ///
    /// Panics if `workload` does not have one entry per node, or contains
    /// negative/NaN values.
    pub fn with_node_workload(mut self, workload: Vec<f64>) -> Self {
        assert_eq!(
            workload.len(),
            self.topology.node_count(),
            "one workload entry per node"
        );
        assert!(
            workload.iter().all(|w| w.is_finite() && *w >= 0.0),
            "workloads are non-negative"
        );
        self.node_workload = Some(workload);
        self
    }

    /// The parameters in use.
    pub fn params(&self) -> LvnParams {
        self.params
    }

    /// Equation (2): node validation — total used bandwidth over total
    /// capacity of all links adjacent to `node`.
    ///
    /// An isolated node has validation 0.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_validation(&self, node: NodeId) -> f64 {
        let mut used = Mbps::ZERO;
        let mut capacity = Mbps::ZERO;
        for inc in self.topology.adjacent(node) {
            used += self.snapshot.used(inc.link);
            capacity += self.topology.link(inc.link).capacity();
        }
        let base = if capacity.is_zero() {
            0.0
        } else {
            used / capacity
        };
        base + self.node_workload.as_ref().map_or(0.0, |w| w[node.index()])
    }

    /// Equation (4): link value — capacity in Mbps over the normalization
    /// constant.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link_value(&self, link: LinkId) -> f64 {
        self.topology.link(link).capacity().as_f64() / self.params.normalization_constant
    }

    /// Equation (3): link utilization term — traffic fraction times link
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link_utilization_term(&self, link: LinkId) -> f64 {
        self.snapshot.utilization(self.topology, link).get() * self.link_value(link)
    }

    /// Equation (1): the Link Validation Number of `link`.
    ///
    /// Administratively-down links (fault injection) weigh
    /// `f64::INFINITY`: Dijkstra never relaxes a non-finite weight, so
    /// no route crosses a down link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn lvn(&self, link: LinkId) -> f64 {
        if self.snapshot.is_admin_down(link) {
            return f64::INFINITY;
        }
        let l = self.topology.link(link);
        let nv_a = self.node_validation(l.a());
        let nv_b = self.node_validation(l.b());
        self.params.combiner.combine(nv_a, nv_b) + self.link_utilization_term(link)
    }

    /// Computes the full per-link weight table.
    pub fn weights(&self) -> LinkWeights {
        self.topology.link_ids().map(|l| self.lvn(l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use crate::units::Fraction;

    /// Builds the three-node fixture of the paper's Figure 4 discussion:
    /// node b has three adjacent links i, j, k.
    fn figure4_fixture() -> (Topology, TrafficSnapshot, LinkId) {
        let mut b = TopologyBuilder::new();
        let node_a = b.add_node("a");
        let node_b = b.add_node("b");
        let node_c = b.add_node("c");
        let node_d = b.add_node("d");
        // link i between b and a; links j, k hang off b.
        let link_i = b.add_link(node_b, node_a, Mbps::new(2.0)).unwrap();
        let link_j = b.add_link(node_b, node_c, Mbps::new(18.0)).unwrap();
        let link_k = b.add_link(node_b, node_d, Mbps::new(2.0)).unwrap();
        let topo = b.build();
        let mut snap = TrafficSnapshot::zero(&topo);
        snap.set_used(link_i, Mbps::new(0.2));
        snap.set_used(link_j, Mbps::new(1.8));
        snap.set_used(link_k, Mbps::new(1.0));
        (topo, snap, link_i)
    }

    #[test]
    fn node_validation_matches_equation_2() {
        let (topo, snap, _) = figure4_fixture();
        let lvn = LvnComputer::new(&topo, &snap, LvnParams::default());
        // NV_b = (UBW_i + UBW_j + UBW_k) / (LBW_i + LBW_j + LBW_k)
        let expected = (0.2 + 1.8 + 1.0) / (2.0 + 18.0 + 2.0);
        assert!((lvn.node_validation(NodeId::new(1)) - expected).abs() < 1e-12);
        // NV_a only sees link i.
        assert!((lvn.node_validation(NodeId::new(0)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn link_value_matches_equation_4() {
        let (topo, snap, link_i) = figure4_fixture();
        let lvn = LvnComputer::new(&topo, &snap, LvnParams::default());
        assert!((lvn.link_value(link_i) - 0.2).abs() < 1e-12);
        let lvn5 = LvnComputer::new(&topo, &snap, LvnParams::with_normalization(5.0));
        assert!((lvn5.link_value(link_i) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn lvn_combines_max_nv_and_lu() {
        let (topo, snap, link_i) = figure4_fixture();
        let lvn = LvnComputer::new(&topo, &snap, LvnParams::default());
        let nv_a: f64 = 0.1;
        let nv_b = 3.0 / 22.0;
        let lu = 0.1 * 0.2; // LT_i = 0.2/2.0, LV_i = 2/10
        let expected = nv_a.max(nv_b) + lu;
        assert!((lvn.lvn(link_i) - expected).abs() < 1e-12);
    }

    #[test]
    fn combiner_variants_order_sensibly() {
        let (topo, snap, link_i) = figure4_fixture();
        let max = LvnComputer::new(&topo, &snap, LvnParams::default()).lvn(link_i);
        let avg = LvnComputer::new(
            &topo,
            &snap,
            LvnParams {
                combiner: NodeCombiner::Avg,
                ..LvnParams::default()
            },
        )
        .lvn(link_i);
        let sum = LvnComputer::new(
            &topo,
            &snap,
            LvnParams {
                combiner: NodeCombiner::Sum,
                ..LvnParams::default()
            },
        )
        .lvn(link_i);
        assert!(avg <= max && max <= sum);
    }

    #[test]
    fn explicit_utilization_feeds_lu_term() {
        let (topo, snap, link_i) = figure4_fixture();
        let mut snap = snap;
        snap.set_explicit_utilization(link_i, Fraction::from_percent(50.0));
        let lvn = LvnComputer::new(&topo, &snap, LvnParams::default());
        // LU becomes 0.5 * 0.2 = 0.1 while NV still uses raw UBW values.
        let nv = (3.0f64 / 22.0).max(0.1);
        assert!((lvn.lvn(link_i) - (nv + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn weights_cover_all_links_and_validate() {
        let (topo, snap, _) = figure4_fixture();
        let weights = LvnComputer::new(&topo, &snap, LvnParams::default()).weights();
        assert_eq!(weights.len(), topo.link_count());
        assert!(weights.validate(&topo).is_ok());
    }

    #[test]
    fn idle_network_has_zero_lvn() {
        let (topo, _, _) = figure4_fixture();
        let snap = TrafficSnapshot::zero(&topo);
        let weights = LvnComputer::new(&topo, &snap, LvnParams::default()).weights();
        for (_, w) in weights.iter() {
            assert_eq!(w, 0.0);
        }
    }

    #[test]
    fn weight_table_validation_catches_errors() {
        let (topo, ..) = figure4_fixture();
        let short = LinkWeights::from_vec(vec![0.1]);
        assert!(matches!(
            short.validate(&topo),
            Err(NetError::WeightCountMismatch { .. })
        ));
        let negative = LinkWeights::from_vec(vec![0.1, -0.2, 0.3]);
        assert!(matches!(
            negative.validate(&topo),
            Err(NetError::NegativeWeight(..))
        ));
        let nan = LinkWeights::from_vec(vec![0.1, f64::NAN, 0.3]);
        assert!(matches!(
            nan.validate(&topo),
            Err(NetError::InvalidWeight(..))
        ));
    }

    #[test]
    fn uniform_weights() {
        let w = LinkWeights::uniform(3, 1.0);
        assert_eq!(w.len(), 3);
        assert!(w.iter().all(|(_, x)| x == 1.0));
        assert!(!w.is_empty());
        assert!(LinkWeights::uniform(0, 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "normalization constant")]
    fn nonpositive_normalization_rejected() {
        let _ = LvnParams::with_normalization(0.0);
    }

    #[test]
    fn try_new_reports_snapshot_mismatch_as_error() {
        let (topo, ..) = figure4_fixture();
        let mut other = TopologyBuilder::new();
        let x = other.add_node("x");
        let y = other.add_node("y");
        other.add_link(x, y, Mbps::new(1.0)).unwrap();
        let foreign = TrafficSnapshot::zero(&other.build());
        assert!(matches!(
            LvnComputer::try_new(&topo, &foreign, LvnParams::default()),
            Err(NetError::WeightCountMismatch {
                expected: 3,
                actual: 1
            })
        ));
        // The matching case still succeeds.
        let snap = TrafficSnapshot::zero(&topo);
        assert!(LvnComputer::try_new(&topo, &snap, LvnParams::default()).is_ok());
    }

    #[test]
    #[should_panic(expected = "snapshot must match topology")]
    fn new_still_panics_on_mismatch() {
        let (topo, ..) = figure4_fixture();
        let mut other = TopologyBuilder::new();
        other.add_node("solo");
        let foreign = TrafficSnapshot::zero(&other.build());
        let _ = LvnComputer::new(&topo, &foreign, LvnParams::default());
    }

    #[test]
    fn node_workload_shifts_validation() {
        let (topo, snap, link_i) = figure4_fixture();
        let plain = LvnComputer::new(&topo, &snap, LvnParams::default());
        let loaded = LvnComputer::new(&topo, &snap, LvnParams::default())
            .with_node_workload(vec![0.5, 0.0, 0.0, 0.0]);
        // Node a (index 0) carries extra CPU load; the link's max(NV) rises.
        assert!(
            (loaded.node_validation(NodeId::new(0)) - plain.node_validation(NodeId::new(0)) - 0.5)
                .abs()
                < 1e-12
        );
        assert!(loaded.lvn(link_i) > plain.lvn(link_i));
        // Other nodes unaffected.
        assert_eq!(
            loaded.node_validation(NodeId::new(2)),
            plain.node_validation(NodeId::new(2))
        );
    }

    #[test]
    #[should_panic(expected = "one workload entry per node")]
    fn workload_length_validated() {
        let (topo, snap, _) = figure4_fixture();
        let _ = LvnComputer::new(&topo, &snap, LvnParams::default()).with_node_workload(vec![0.1]);
    }
}
