//! Network links.

use serde::{Deserialize, Serialize};

use crate::ids::{LinkId, NodeId};
use crate::units::Mbps;

/// A bidirectional network link between two nodes.
///
/// The paper models each backbone connection as a single bidirectional pipe
/// whose SNMP utilization is `(traffic_in + traffic_out) / capacity`
/// (its equation (5)); we follow that convention, so a `Link` carries one
/// capacity and is shared by both directions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    id: LinkId,
    a: NodeId,
    b: NodeId,
    capacity: Mbps,
}

impl Link {
    pub(crate) fn new(id: LinkId, a: NodeId, b: NodeId, capacity: Mbps) -> Self {
        Link { id, a, b, capacity }
    }

    /// Returns this link's identifier.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Returns the first endpoint (the one passed first at construction).
    pub fn a(&self) -> NodeId {
        self.a
    }

    /// Returns the second endpoint.
    pub fn b(&self) -> NodeId {
        self.b
    }

    /// Returns both endpoints as `(a, b)`.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// Returns the total capacity of the link.
    pub fn capacity(&self) -> Mbps {
        self.capacity
    }

    /// Returns true if `node` is one of this link's endpoints.
    pub fn touches(&self, node: NodeId) -> bool {
        self.a == node || self.b == node
    }

    /// Given one endpoint, returns the other one.
    ///
    /// Returns `None` if `node` is not an endpoint of this link.
    pub fn opposite(&self, node: NodeId) -> Option<NodeId> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(
            LinkId::new(0),
            NodeId::new(1),
            NodeId::new(2),
            Mbps::new(2.0),
        )
    }

    #[test]
    fn accessors() {
        let l = link();
        assert_eq!(l.id(), LinkId::new(0));
        assert_eq!(l.a(), NodeId::new(1));
        assert_eq!(l.b(), NodeId::new(2));
        assert_eq!(l.endpoints(), (NodeId::new(1), NodeId::new(2)));
        assert_eq!(l.capacity(), Mbps::new(2.0));
    }

    #[test]
    fn touches_both_endpoints_only() {
        let l = link();
        assert!(l.touches(NodeId::new(1)));
        assert!(l.touches(NodeId::new(2)));
        assert!(!l.touches(NodeId::new(3)));
    }

    #[test]
    fn opposite_endpoint() {
        let l = link();
        assert_eq!(l.opposite(NodeId::new(1)), Some(NodeId::new(2)));
        assert_eq!(l.opposite(NodeId::new(2)), Some(NodeId::new(1)));
        assert_eq!(l.opposite(NodeId::new(9)), None);
    }
}
