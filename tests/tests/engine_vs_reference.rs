//! Property test: the epoch-cached routing engine is bit-identical to the
//! slow reference pipeline (LvnComputer + dijkstra_with_trace) and agrees
//! with Bellman–Ford, on randomized connected topologies with randomized
//! traffic — including after incremental (journal-driven) weight patches.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vod_core::selection::{SelectionContext, ServerSelector};
use vod_core::vra::Vra;
use vod_net::dijkstra::{bellman_ford, dijkstra_with_trace};
use vod_net::engine::{BatchRequest, RoutingEngine};
use vod_net::lvn::{LvnComputer, LvnParams};
use vod_net::topologies::random::connected_gnp;
use vod_net::units::Fraction;
use vod_net::{LinkId, Mbps, NodeId, Topology, TrafficSnapshot};

/// Randomized traffic: every link carries a random fraction of its
/// capacity; a few links additionally get explicit (rounded) utilization
/// readings, as the paper's Table 2 does.
fn random_snapshot(topology: &Topology, rng: &mut StdRng) -> TrafficSnapshot {
    let mut snap = TrafficSnapshot::zero(topology);
    for link in topology.link_ids() {
        let capacity = topology.link(link).capacity();
        snap.set_used(link, capacity * rng.gen_range(0.0..0.95));
        if rng.gen_bool(0.2) {
            snap.set_explicit_utilization(link, Fraction::new(rng.gen_range(0.0..1.0)));
        }
    }
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_matches_references_on_random_topologies(
        n in 4usize..32,
        seed in any::<u64>(),
        mutations in 1usize..6,
    ) {
        let topology = connected_gnp(n, 0.2, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let mut snapshot = random_snapshot(&topology, &mut rng);
        let params = LvnParams::default();
        let mut engine = RoutingEngine::new(params);

        // 1. Cached weight table == the reference computation, float for
        //    float.
        let reference = LvnComputer::new(&topology, &snapshot, params).weights();
        {
            let weights = engine.weights(&topology, &snapshot).unwrap();
            prop_assert_eq!(weights, &reference);
        }

        // 2. Engine shortest paths == dijkstra_with_trace (identical
        //    distances, predecessors and tie-breaks) and Bellman–Ford
        //    agrees on every distance.
        let home = NodeId::new(rng.gen_range(0..n as u32));
        let engine_paths = engine.paths_from(&topology, &snapshot, home).unwrap();
        let (trace_paths, _) = dijkstra_with_trace(&topology, &reference, home).unwrap();
        prop_assert_eq!(&*engine_paths, &trace_paths);
        let bf = bellman_ford(&topology, &reference, home).unwrap();
        for node in topology.node_ids() {
            match (engine_paths.distance_to(node), bf[node.index()]) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (None, None) => {}
                other => prop_assert!(false, "reachability mismatch: {:?}", other),
            }
        }

        // 3. Engine selection == the trace-producing Vra report path
        //    (same server, same route, same tie-breaks).
        let candidate_count = rng.gen_range(1..=3usize.min(n - 1));
        let candidates: Vec<NodeId> = (0..candidate_count)
            .map(|_| NodeId::new(rng.gen_range(0..n as u32)))
            .collect();
        let ctx = SelectionContext {
            topology: &topology,
            snapshot: &snapshot,
            home,
            candidates: &candidates,
        };
        let report = Vra::new(params).select_with_report(&ctx).unwrap();
        let engine_sel = engine
            .select(&topology, &snapshot, home, &candidates)
            .unwrap()
            .unwrap();
        prop_assert_eq!(engine_sel.server, report.selection.server);
        prop_assert_eq!(&engine_sel.route, &report.selection.route);

        // 4. After journaled mutations the incrementally-patched table is
        //    still bit-identical to a cold recompute.
        for _ in 0..mutations {
            let link = vod_net::LinkId::new(rng.gen_range(0..topology.link_count() as u32));
            let capacity = topology.link(link).capacity();
            snapshot.set_used(link, capacity * rng.gen_range(0.0..0.95));
        }
        let patched = engine.weights(&topology, &snapshot).unwrap().clone();
        let recomputed = LvnComputer::new(&topology, &snapshot, params).weights();
        prop_assert_eq!(&patched, &recomputed);
        let after = engine.paths_from(&topology, &snapshot, home).unwrap();
        let (trace_after, _) = dijkstra_with_trace(&topology, &recomputed, home).unwrap();
        prop_assert_eq!(&*after, &trace_after);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dynamic SSSP repair: every cached tree — one per home server —
    /// survives a random *sequence* of snapshot epochs (weight increases
    /// and decreases, admin-down/up flips, journal-overflow bursts) and
    /// stays bit-identical (`==`, distances *and* parents) to a
    /// from-scratch Dijkstra over the patched weights, with Bellman–Ford
    /// co-signing the distances.
    #[test]
    fn repaired_trees_match_from_scratch_over_mutation_sequences(
        n in 6usize..36,
        seed in any::<u64>(),
        epochs in 1usize..5,
    ) {
        let topology = connected_gnp(n, 0.25, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd_ef01_2345_6789);
        let mut snapshot = random_snapshot(&topology, &mut rng);
        let params = LvnParams::default();
        let mut engine = RoutingEngine::new(params);

        // Warm one tree per home so every epoch change repairs n trees.
        for home in topology.node_ids() {
            engine.paths_from(&topology, &snapshot, home).unwrap();
        }

        for epoch in 0..epochs {
            let m = topology.link_count() as u32;
            match rng.gen_range(0u8..10) {
                // Journal-overflow burst: more mutations than the
                // journal holds, forcing the full-rebuild fallback.
                0 => {
                    for _ in 0..600 {
                        let link = LinkId::new(rng.gen_range(0..m));
                        snapshot.add_used(link, Mbps::new(0.0001));
                    }
                }
                // Admin flips: tree edges vanish (∞) and come back.
                1 | 2 => {
                    let link = LinkId::new(rng.gen_range(0..m));
                    let down = !snapshot.is_admin_down(link);
                    snapshot.set_admin_down(link, down);
                }
                // Plain traffic drift: 1–3 links re-read, weights move
                // up or down.
                _ => {
                    for _ in 0..rng.gen_range(1..=3usize) {
                        let link = LinkId::new(rng.gen_range(0..m));
                        let capacity = topology.link(link).capacity();
                        snapshot.set_used(link, capacity * rng.gen_range(0.0..0.95));
                    }
                }
            }

            let reference = LvnComputer::new(&topology, &snapshot, params).weights();
            for home in topology.node_ids() {
                let tree = engine.paths_from(&topology, &snapshot, home).unwrap();
                let (oracle, _) = dijkstra_with_trace(&topology, &reference, home).unwrap();
                prop_assert_eq!(&*tree, &oracle, "epoch {} home {:?}", epoch, home);
                let bf = bellman_ford(&topology, &reference, home).unwrap();
                for node in topology.node_ids() {
                    match (tree.distance_to(node), bf[node.index()]) {
                        (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                        (None, None) => {}
                        other => prop_assert!(false, "reachability mismatch: {:?}", other),
                    }
                }
            }
        }
    }
}

/// The pooled batch path answers exactly like per-request sequential
/// selects, across worker counts — the worker-count override bypasses
/// the hardware clamp so the pool genuinely engages even on 1-CPU CI.
#[test]
fn pooled_batches_match_sequential_across_worker_counts() {
    for case in 0u64..40 {
        let n = 6 + (case as usize % 28);
        let topology = connected_gnp(n, 0.25, case * 13 + 3);
        let mut rng = StdRng::seed_from_u64(case.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let snapshot = random_snapshot(&topology, &mut rng);

        let candidate_sets: Vec<Vec<NodeId>> = (0..n)
            .map(|_| {
                (0..rng.gen_range(1..=3usize))
                    .map(|_| NodeId::new(rng.gen_range(0..n as u32)))
                    .collect()
            })
            .collect();
        let requests: Vec<BatchRequest<'_>> = candidate_sets
            .iter()
            .enumerate()
            .map(|(i, candidates)| BatchRequest {
                home: NodeId::new(i as u32),
                candidates,
            })
            .collect();

        let mut reference = RoutingEngine::default();
        let expected: Vec<_> = requests
            .iter()
            .map(|r| {
                reference
                    .select(&topology, &snapshot, r.home, r.candidates)
                    .unwrap()
            })
            .collect();

        for workers in [1usize, 2, 3, 8] {
            let mut engine = RoutingEngine::default();
            engine.set_batch_workers(Some(workers));
            let got = engine
                .select_batch(&topology, &snapshot, &requests)
                .unwrap();
            assert_eq!(got, expected, "case {case} workers {workers}");
        }
    }
}

/// The Vra fast path (ServerSelector::select) and the report path agree
/// on 100+ seeded random cases — the selector-level variant of the
/// engine property above.
#[test]
fn vra_fast_path_matches_report_on_seeded_cases() {
    for case in 0u64..110 {
        let n = 4 + (case as usize % 24);
        let topology = connected_gnp(n, 0.25, case * 7 + 1);
        let mut rng = StdRng::seed_from_u64(case.wrapping_mul(0x5851_f42d_4c95_7f2d));
        let snapshot = random_snapshot(&topology, &mut rng);
        let home = NodeId::new(rng.gen_range(0..n as u32));
        let candidates: Vec<NodeId> = (0..1 + case as usize % 3)
            .map(|_| NodeId::new(rng.gen_range(0..n as u32)))
            .collect();
        let ctx = SelectionContext {
            topology: &topology,
            snapshot: &snapshot,
            home,
            candidates: &candidates,
        };
        let mut vra = Vra::default();
        let report = vra.select_with_report(&ctx).unwrap();
        let fast = vra.select(&ctx).unwrap();
        assert_eq!(fast, report.selection, "case {case}");
    }
}
