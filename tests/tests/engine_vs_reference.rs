//! Property test: the epoch-cached routing engine is bit-identical to the
//! slow reference pipeline (LvnComputer + dijkstra_with_trace) and agrees
//! with Bellman–Ford, on randomized connected topologies with randomized
//! traffic — including after incremental (journal-driven) weight patches.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vod_core::selection::{SelectionContext, ServerSelector};
use vod_core::vra::Vra;
use vod_net::dijkstra::{bellman_ford, dijkstra_with_trace};
use vod_net::engine::RoutingEngine;
use vod_net::lvn::{LvnComputer, LvnParams};
use vod_net::topologies::random::connected_gnp;
use vod_net::units::Fraction;
use vod_net::{NodeId, Topology, TrafficSnapshot};

/// Randomized traffic: every link carries a random fraction of its
/// capacity; a few links additionally get explicit (rounded) utilization
/// readings, as the paper's Table 2 does.
fn random_snapshot(topology: &Topology, rng: &mut StdRng) -> TrafficSnapshot {
    let mut snap = TrafficSnapshot::zero(topology);
    for link in topology.link_ids() {
        let capacity = topology.link(link).capacity();
        snap.set_used(link, capacity * rng.gen_range(0.0..0.95));
        if rng.gen_bool(0.2) {
            snap.set_explicit_utilization(link, Fraction::new(rng.gen_range(0.0..1.0)));
        }
    }
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_matches_references_on_random_topologies(
        n in 4usize..32,
        seed in any::<u64>(),
        mutations in 1usize..6,
    ) {
        let topology = connected_gnp(n, 0.2, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let mut snapshot = random_snapshot(&topology, &mut rng);
        let params = LvnParams::default();
        let mut engine = RoutingEngine::new(params);

        // 1. Cached weight table == the reference computation, float for
        //    float.
        let reference = LvnComputer::new(&topology, &snapshot, params).weights();
        {
            let weights = engine.weights(&topology, &snapshot).unwrap();
            prop_assert_eq!(weights, &reference);
        }

        // 2. Engine shortest paths == dijkstra_with_trace (identical
        //    distances, predecessors and tie-breaks) and Bellman–Ford
        //    agrees on every distance.
        let home = NodeId::new(rng.gen_range(0..n as u32));
        let engine_paths = engine.paths_from(&topology, &snapshot, home).unwrap();
        let (trace_paths, _) = dijkstra_with_trace(&topology, &reference, home).unwrap();
        prop_assert_eq!(&*engine_paths, &trace_paths);
        let bf = bellman_ford(&topology, &reference, home).unwrap();
        for node in topology.node_ids() {
            match (engine_paths.distance_to(node), bf[node.index()]) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (None, None) => {}
                other => prop_assert!(false, "reachability mismatch: {:?}", other),
            }
        }

        // 3. Engine selection == the trace-producing Vra report path
        //    (same server, same route, same tie-breaks).
        let candidate_count = rng.gen_range(1..=3usize.min(n - 1));
        let candidates: Vec<NodeId> = (0..candidate_count)
            .map(|_| NodeId::new(rng.gen_range(0..n as u32)))
            .collect();
        let ctx = SelectionContext {
            topology: &topology,
            snapshot: &snapshot,
            home,
            candidates: &candidates,
        };
        let report = Vra::new(params).select_with_report(&ctx).unwrap();
        let engine_sel = engine
            .select(&topology, &snapshot, home, &candidates)
            .unwrap()
            .unwrap();
        prop_assert_eq!(engine_sel.server, report.selection.server);
        prop_assert_eq!(&engine_sel.route, &report.selection.route);

        // 4. After journaled mutations the incrementally-patched table is
        //    still bit-identical to a cold recompute.
        for _ in 0..mutations {
            let link = vod_net::LinkId::new(rng.gen_range(0..topology.link_count() as u32));
            let capacity = topology.link(link).capacity();
            snapshot.set_used(link, capacity * rng.gen_range(0.0..0.95));
        }
        let patched = engine.weights(&topology, &snapshot).unwrap().clone();
        let recomputed = LvnComputer::new(&topology, &snapshot, params).weights();
        prop_assert_eq!(&patched, &recomputed);
        let after = engine.paths_from(&topology, &snapshot, home).unwrap();
        let (trace_after, _) = dijkstra_with_trace(&topology, &recomputed, home).unwrap();
        prop_assert_eq!(&*after, &trace_after);
    }
}

/// The Vra fast path (ServerSelector::select) and the report path agree
/// on 100+ seeded random cases — the selector-level variant of the
/// engine property above.
#[test]
fn vra_fast_path_matches_report_on_seeded_cases() {
    for case in 0u64..110 {
        let n = 4 + (case as usize % 24);
        let topology = connected_gnp(n, 0.25, case * 7 + 1);
        let mut rng = StdRng::seed_from_u64(case.wrapping_mul(0x5851_f42d_4c95_7f2d));
        let snapshot = random_snapshot(&topology, &mut rng);
        let home = NodeId::new(rng.gen_range(0..n as u32));
        let candidates: Vec<NodeId> = (0..1 + case as usize % 3)
            .map(|_| NodeId::new(rng.gen_range(0..n as u32)))
            .collect();
        let ctx = SelectionContext {
            topology: &topology,
            snapshot: &snapshot,
            home,
            candidates: &candidates,
        };
        let mut vra = Vra::default();
        let report = vra.select_with_report(&ctx).unwrap();
        let fast = vra.select(&ctx).unwrap();
        assert_eq!(fast, report.selection, "case {case}");
    }
}
