//! Integration test: full service runs across crates — scenarios from
//! `vod-workload`, the service loop from `vod-core`, SNMP/database/DMA
//! underneath — checking cross-component invariants.

use vod_core::selection::{FirstCandidate, HopCountNearest, RandomReplica, ServerSelector};
use vod_core::service::{ServiceConfig, VodService};
use vod_core::vra::Vra;
use vod_integration_tests::TEST_SEED;
use vod_sim::{SimDuration, SimTime};
use vod_storage::cluster::ClusterSize;
use vod_storage::video::Megabytes;
use vod_workload::arrivals::HourlyShape;
use vod_workload::library::{LibraryConfig, LibraryGenerator};
use vod_workload::scenario::Scenario;
use vod_workload::trace::TraceConfig;

fn small_scenario(seed: u64) -> Scenario {
    let grnet = vod_net::topologies::grnet::Grnet::new();
    let library = LibraryGenerator::new(LibraryConfig {
        titles: 15,
        min_size_mb: 50.0,
        max_size_mb: 150.0,
        bitrate_mbps: 1.5,
    })
    .generate(seed);
    let trace = TraceConfig {
        start: SimTime::from_secs(8 * 3600),
        duration: SimDuration::from_secs(3600),
        rate_per_sec: 0.008,
        shape: HourlyShape::flat(),
        zipf_skew: 0.9,
        client_weights: None,
    }
    .generate(grnet.topology(), &library, seed);
    Scenario::new(
        "integration",
        grnet.topology().clone(),
        library,
        trace,
        vod_sim::traffic::BackgroundModel::grnet_table2(&grnet),
        seed,
    )
}

fn config() -> ServiceConfig {
    ServiceConfig {
        cluster: ClusterSize::new(Megabytes::new(25.0)),
        initial_replicas: 2,
        ..ServiceConfig::default()
    }
}

#[test]
fn accounting_is_conserved_across_selectors() {
    let scenario = small_scenario(TEST_SEED);
    let n = scenario.trace().len();
    let selectors: Vec<Box<dyn ServerSelector>> = vec![
        Box::new(Vra::default()),
        Box::new(HopCountNearest),
        Box::new(RandomReplica::new(TEST_SEED)),
        Box::new(FirstCandidate),
    ];
    for selector in selectors {
        let name = selector.name().to_string();
        let report = VodService::new(&scenario, selector, config()).run();
        assert_eq!(
            report.completed.len()
                + report.unfinished_sessions
                + report.failed_requests as usize
                + report.aborted_sessions as usize
                + report.rejected_requests as usize,
            n,
            "{name}: sessions must be conserved"
        );
        // Every record internally consistent.
        for r in &report.completed {
            assert!(r.completed_at >= r.requested_at, "{name}");
            assert!(r.local_clusters <= r.clusters, "{name}");
            assert!(
                r.stall_count == 0 || r.stall_time > SimDuration::ZERO,
                "{name}"
            );
            assert!(r.local_fraction() >= 0.0 && r.local_fraction() <= 1.0);
        }
        // DMA saw exactly the admitted requests.
        assert_eq!(report.dma.requests, n as u64, "{name}");
        // The fluid model never oversubscribes a link.
        assert!(report.max_link_utilization.max <= 1.0 + 1e-9, "{name}");
    }
}

#[test]
fn identical_runs_produce_identical_reports() {
    let a = VodService::new(&small_scenario(7), Box::new(Vra::default()), config()).run();
    let b = VodService::new(&small_scenario(7), Box::new(Vra::default()), config()).run();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_produce_different_workloads() {
    let a = VodService::new(&small_scenario(1), Box::new(Vra::default()), config()).run();
    let b = VodService::new(&small_scenario(2), Box::new(Vra::default()), config()).run();
    assert_ne!(a.completed, b.completed);
}

#[test]
fn full_replication_eliminates_network_traffic() {
    let scenario = small_scenario(3);
    let report = VodService::new(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig {
            initial_replicas: 6,
            disk_capacity: Megabytes::new(100_000.0),
            ..config()
        },
    )
    .run();
    assert!(report.failed_requests == 0);
    for r in &report.completed {
        assert_eq!(r.local_clusters, r.clusters);
        assert_eq!(r.stall_count, 0, "local serves never starve");
    }
}

#[test]
fn dynamic_rerouting_never_loses_sessions_vs_static() {
    let scenario = small_scenario(5);
    let dynamic = VodService::new(&scenario, Box::new(Vra::default()), config()).run();
    let static_run = VodService::new(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig {
            dynamic_rerouting: false,
            ..config()
        },
    )
    .run();
    assert_eq!(
        dynamic.completed.len() + dynamic.unfinished_sessions,
        static_run.completed.len() + static_run.unfinished_sessions
    );
    // Static mode never switches; dynamic may.
    assert!(static_run.completed.iter().all(|r| r.switches == 0));
}

#[test]
fn flash_crowd_scenario_exercises_dma_evictions_or_hits() {
    let scenario = Scenario::flash_crowd(TEST_SEED);
    // Give the caches little room so the DMA must make choices.
    let report = VodService::new(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig {
            disk_capacity: Megabytes::new(1_000.0),
            ..ServiceConfig::default()
        },
    )
    .run();
    assert!(report.dma.requests > 0);
    assert!(
        report.dma.hits + report.dma.rejections > 0,
        "a constrained cache must either hit or reject"
    );
}

#[test]
fn random_network_scenario_runs_clean() {
    let scenario = Scenario::random_network(TEST_SEED);
    let report = VodService::new(&scenario, Box::new(Vra::default()), config()).run();
    assert!(report.failed_requests == 0);
    assert!(!report.completed.is_empty());
}
