//! Integration test: determinism and serializability guarantees across
//! the whole stack — the properties that make every number in
//! EXPERIMENTS.md reproducible.

use vod_core::selection::{SelectionContext, ServerSelector};
use vod_core::service::{ServiceConfig, VodService};
use vod_core::vra::Vra;
use vod_core::ServiceReport;
use vod_integration_tests::{grnet, TEST_SEED};
use vod_net::topologies::grnet::{GrnetNode, TimeOfDay};
use vod_net::NodeId;
use vod_sim::{SimDuration, SimTime};
use vod_workload::scenario::Scenario;

/// Every (time, home, candidate-set) decision on the case study is a pure
/// function — run twice, byte-identical.
#[test]
fn vra_decisions_are_pure_functions_of_state() {
    let g = grnet();
    let homes = GrnetNode::ALL;
    let mut first_pass = Vec::new();
    for round in 0..2 {
        let mut decisions = Vec::new();
        for time in TimeOfDay::ALL {
            let snap = g.snapshot(time);
            for home in homes {
                let candidates: Vec<NodeId> = GrnetNode::ALL
                    .iter()
                    .filter(|&&c| c != home)
                    .map(|&c| g.node(c))
                    .collect();
                let sel = Vra::default()
                    .select(&SelectionContext {
                        topology: g.topology(),
                        snapshot: &snap,
                        home: g.node(home),
                        candidates: &candidates,
                    })
                    .unwrap();
                decisions.push((time.label(), home.u_label(), sel.server, sel.route.cost()));
            }
        }
        if round == 0 {
            first_pass = decisions;
        } else {
            assert_eq!(first_pass, decisions);
        }
    }
    // 4 times × 6 homes.
    assert_eq!(first_pass.len(), 24);
}

/// A service report survives a JSON round trip intact — experiment
/// artifacts can be archived and diffed.
#[test]
fn service_report_serde_round_trip() {
    let scenario = Scenario::random_network(TEST_SEED);
    let report = VodService::new(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig::default(),
    )
    .run();
    let json = serde_json::to_string(&report).unwrap();
    let back: ServiceReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
    assert!(!report.completed.is_empty());
}

/// Incremental execution (run_until in steps) reaches exactly the same
/// final state as one uninterrupted run.
#[test]
fn stepped_and_continuous_runs_agree() {
    let scenario = Scenario::random_network(7);
    let continuous = VodService::new(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig::default(),
    )
    .run();

    let mut stepped = VodService::new(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig::default(),
    );
    let mut deadline = SimTime::ZERO;
    for _ in 0..50 {
        deadline += SimDuration::from_secs(30 * 60);
        stepped.run_until(deadline);
    }
    assert!(stepped.now() >= deadline);
    assert!(stepped.events_processed() > 0);
    // Drain whatever remains and compare.
    let report = {
        let mut s = stepped;
        // run() consumes; emulate by running until far future then report.
        s.run_until(SimTime::from_secs(100 * 24 * 3600));
        s.into_report()
    };
    assert_eq!(continuous, report);
}

/// The scenario builders themselves are seed-deterministic across types.
#[test]
fn all_scenario_builders_are_deterministic() {
    for build in [
        Scenario::grnet_case_study as fn(u64) -> Scenario,
        Scenario::flash_crowd,
        Scenario::random_network,
    ] {
        assert_eq!(build(5), build(5));
        assert_ne!(build(5).trace(), build(6).trace());
    }
}
