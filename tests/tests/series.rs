//! Integration tests for the time-series and span layers: the golden
//! seed-42 determinism contract (byte-identical `--series` output
//! across reruns *and* across flow kernels), `A013` reconciliation of
//! the series against its own trace, and property tests that span
//! assembly never produces negative or overlapping phase durations —
//! even under random fault plans with retries.

use proptest::prelude::*;

use vod_check::series::audit_series;
use vod_core::service::{RetryPolicy, ServiceConfig, VodService};
use vod_core::vra::Vra;
use vod_obs::{JsonlWriter, SpanBuilder, SpanOutcome, SpanReport, TeeSink, TimeSeriesSink};
use vod_sim::fault::FaultPlan;
use vod_sim::flow::FlowKernel;
use vod_sim::SimDuration;
use vod_workload::scenario::Scenario;

/// Runs the seed-42 GRNET case study under `config` with a tee'd
/// JSONL + time-series sink; returns `(trace, series_json, series_csv)`.
fn instrumented_run(config: ServiceConfig) -> (String, String, String) {
    let scenario = Scenario::grnet_case_study(42);
    let sink = TeeSink::new(JsonlWriter::new(Vec::new()), TimeSeriesSink::new());
    let service = VodService::with_sink(&scenario, Box::new(Vra::default()), config, sink);
    let (_, _, sink) = service.run_full();
    let (jsonl, series) = sink.into_parts();
    let trace = String::from_utf8(jsonl.into_inner()).expect("JSONL traces are UTF-8");
    let report = series.finish();
    (trace, report.to_json(), report.to_csv())
}

/// The golden contract behind every committed `--series` artifact:
/// reruns are byte-identical, and the O(log n) lazy flow kernel
/// produces the exact same series as the O(sessions) reference kernel.
#[test]
fn series_is_byte_identical_across_runs_and_kernels() {
    let (trace_a, json_a, csv_a) = instrumented_run(ServiceConfig::default());
    let (trace_b, json_b, csv_b) = instrumented_run(ServiceConfig::default());
    assert!(!json_a.is_empty() && json_a.contains("\"windows\":["));
    assert_eq!(trace_a, trace_b, "traces must replay byte-for-byte");
    assert_eq!(json_a, json_b, "series JSON must replay byte-for-byte");
    assert_eq!(csv_a, csv_b, "series CSV must replay byte-for-byte");

    let reference = ServiceConfig {
        flow_kernel: FlowKernel::Reference,
        ..ServiceConfig::default()
    };
    let (_, json_ref, csv_ref) = instrumented_run(reference);
    assert_eq!(
        json_a, json_ref,
        "lazy and reference kernels must yield identical series JSON"
    );
    assert_eq!(
        csv_a, csv_ref,
        "lazy and reference kernels must yield identical series CSV"
    );
}

/// The series a run exports reconciles with the trace the same run
/// wrote, under the independent `A013` auditor.
#[test]
fn series_reconciles_with_own_trace() {
    let (trace, json, _) = instrumented_run(ServiceConfig::default());
    let summary = audit_series(&json, &trace);
    assert!(
        summary.is_clean(),
        "A013 violations on a clean run: {:?}",
        summary.violations
    );
    assert!(summary.windows > 0);
}

/// Checks every phase-duration invariant of one assembled span report:
/// request ≤ admission ≤ start ≤ end, with switches confined to the
/// streaming phase and strictly ordered.
fn assert_spans_well_formed(report: &SpanReport) -> Result<(), TestCaseError> {
    for span in &report.spans {
        prop_assert!(
            span.admitted_at >= span.requested_at,
            "session {} admitted before it was requested",
            span.session
        );
        if let Some(started) = span.started_at {
            prop_assert!(
                started >= span.admitted_at,
                "session {} started before admission",
                span.session
            );
            if let Some(ended) = span.ended_at {
                prop_assert!(
                    ended >= started,
                    "session {} ended before it started",
                    span.session
                );
                let mut prev = started;
                for &switch in &span.switch_times {
                    prop_assert!(
                        switch >= prev && switch <= ended,
                        "session {} switch at {:?} outside [{:?}, {:?}]",
                        span.session,
                        switch,
                        prev,
                        ended
                    );
                    prev = switch;
                }
                if let Some(streaming) = span.streaming_time() {
                    let gaps = span
                        .switch_gaps()
                        .into_iter()
                        .fold(SimDuration::default(), |a, b| a + b);
                    prop_assert!(
                        gaps <= streaming,
                        "session {} switch gaps exceed streaming time",
                        span.session
                    );
                }
            }
        }
        if span.outcome == SpanOutcome::Completed {
            prop_assert!(
                span.started_at.is_some() && span.ended_at.is_some(),
                "completed session {} lacks start/end",
                span.session
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Under arbitrary fault plans and retry budgets, span assembly
    /// never yields a negative or overlapping phase duration, and
    /// post-processing the trace with `ingest_jsonl` reconstructs the
    /// exact spans the live sink recorded.
    #[test]
    fn span_phases_stay_ordered_under_faults(
        seed in 0u64..10_000,
        faults in 0usize..6,
        budget in 0u32..4,
    ) {
        let scenario = Scenario::grnet_case_study(seed);
        let start = scenario
            .trace()
            .requests()
            .first()
            .map(|r| r.at)
            .unwrap_or_default();
        let plan = FaultPlan::random(
            seed,
            scenario.topology(),
            start,
            start + SimDuration::from_secs(1800),
            faults,
        );
        let config = ServiceConfig {
            fault_plan: plan,
            retry: RetryPolicy::with_attempts(budget),
            ..ServiceConfig::default()
        };
        let sink = TeeSink::new(JsonlWriter::new(Vec::new()), SpanBuilder::new());
        let service =
            VodService::with_sink(&scenario, Box::new(Vra::default()), config, sink);
        let (_, _, sink) = service.run_full();
        let (jsonl, live_builder) = sink.into_parts();
        let trace = String::from_utf8(jsonl.into_inner()).expect("JSONL traces are UTF-8");
        let live = live_builder.finish();
        prop_assert!(!live.spans.is_empty(), "case study must produce sessions");
        assert_spans_well_formed(&live)?;

        let mut replayed = SpanBuilder::new();
        replayed.ingest_jsonl(&trace);
        let replayed = replayed.finish();
        prop_assert_eq!(
            replayed.spans.len(),
            live.spans.len(),
            "trace replay must see every session"
        );
        for (a, b) in live.spans.iter().zip(&replayed.spans) {
            prop_assert_eq!(a, b, "live and replayed spans must agree");
        }
    }
}

/// The span report's histograms digest only well-defined durations:
/// a run with zero switches yields an empty time-to-switch histogram,
/// and startup samples are exactly the started sessions.
#[test]
fn span_histograms_cover_expected_populations() {
    let scenario = Scenario::grnet_case_study(42);
    let service = VodService::with_sink(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig::default(),
        SpanBuilder::new(),
    );
    let (_, _, builder) = service.run_full();
    let report = builder.finish();
    let started = report
        .spans
        .iter()
        .filter(|s| s.started_at.is_some())
        .count();
    assert_eq!(report.startup_histogram().count(), started as u64);
    let switches: usize = report.spans.iter().map(|s| s.switch_times.len()).sum();
    assert_eq!(report.time_to_switch_histogram().count(), switches as u64);
}
