//! Integration tests for the event-driven (lazy) flow kernel: the
//! pinned seed-42 GRNET golden trace, service-level lazy-vs-reference
//! equivalence, and a scale-stress smoke run.

use vod_core::service::{ServiceConfig, VodService};
use vod_core::vra::Vra;
use vod_net::Mbps;
use vod_obs::JsonlWriter;
use vod_sim::FlowKernel;
use vod_workload::scenario::Scenario;

/// Runs `scenario` with a JSONL sink and returns the raw trace bytes.
fn traced_run(scenario: &Scenario, config: ServiceConfig) -> Vec<u8> {
    let service = VodService::with_sink(
        scenario,
        Box::new(Vra::default()),
        config,
        JsonlWriter::new(Vec::new()),
    );
    let (_report, _run_report, sink) = service.run_full();
    sink.into_inner()
}

/// FNV-1a 64 over the trace bytes — cheap, dependency-free, and stable
/// across platforms (the trace itself is byte-deterministic).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// The seed-42 GRNET case-study trace is pinned byte-for-byte: any
/// kernel change that shifts a completion instant, reorders an event or
/// perturbs a float by one ulp moves the hash. Regenerate the expected
/// values with `cargo run --release -p vod-check --example dump_grnet`
/// if a deliberate trace-format change lands.
#[test]
fn golden_seed42_grnet_trace_is_pinned_and_audits_clean() {
    let scenario = Scenario::grnet_case_study(42);
    let bytes = traced_run(&scenario, ServiceConfig::default());
    let text = String::from_utf8(bytes).unwrap();

    assert_eq!(text.len(), 269_541, "trace byte length drifted");
    assert_eq!(text.lines().count(), 3_026, "trace line count drifted");
    assert_eq!(
        fnv1a(text.as_bytes()),
        0xe734_c43e_1097_1b45,
        "trace content drifted"
    );

    let summary = vod_check::audit::audit_trace(&text);
    assert!(summary.is_clean(), "audit violations: {summary:?}");
}

/// Pulls `"at_us":N` and `"kind":"..."` out of one trace line.
fn at_and_kind(line: &str) -> (u64, &str) {
    let at: u64 = line["{\"at_us\":".len()..]
        .split(',')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    let kind_start = line.find("\"kind\":\"").unwrap() + "\"kind\":\"".len();
    let kind = line[kind_start..].split('"').next().unwrap();
    (at, kind)
}

/// The lazy kernel is service-level equivalent to the retained reference
/// kernel: the same events in the same order, with completion-driven
/// timestamps allowed to differ by at most the documented ±1 µs
/// ceil-rounding skew on either side (stepwise vs anchored residual
/// arithmetic round differently when a transfer lands exactly on a
/// microsecond boundary).
#[test]
fn lazy_and_reference_kernels_produce_equivalent_traces() {
    let scenario = Scenario::scale_stress(11, 500);
    let config = |kernel| ServiceConfig {
        initial_replicas: 6,
        local_rate: Mbps::new(2.0),
        flow_kernel: kernel,
        ..ServiceConfig::default()
    };
    let lazy = String::from_utf8(traced_run(&scenario, config(FlowKernel::Lazy))).unwrap();
    let reference =
        String::from_utf8(traced_run(&scenario, config(FlowKernel::Reference))).unwrap();
    assert!(!lazy.is_empty());
    assert_eq!(lazy.lines().count(), reference.lines().count());
    for (l, r) in lazy.lines().zip(reference.lines()) {
        if l == r {
            continue;
        }
        let (l_at, l_kind) = at_and_kind(l);
        let (r_at, r_kind) = at_and_kind(r);
        assert_eq!(l_kind, r_kind, "event order diverged: {l} vs {r}");
        assert!(
            l_at.abs_diff(r_at) <= 2,
            "timestamps diverged beyond rounding skew: {l} vs {r}"
        );
    }

    // On the case study, where transfers actually cross the network and
    // share links max-min fairly, the kernels happen to agree to the
    // byte (the golden seed-42 baseline was recorded pre-refactor with
    // the reference kernel); pin that stronger fact where it holds.
    let grnet = Scenario::grnet_case_study(42);
    let lazy = traced_run(
        &grnet,
        ServiceConfig {
            flow_kernel: FlowKernel::Lazy,
            ..ServiceConfig::default()
        },
    );
    let reference = traced_run(
        &grnet,
        ServiceConfig {
            flow_kernel: FlowKernel::Reference,
            ..ServiceConfig::default()
        },
    );
    assert_eq!(lazy, reference);
}

/// A scaled-down scale-stress run: every arrival is admitted, stays live
/// to the end of the window (peak = arrival count) and completes.
#[test]
fn scale_stress_smoke_completes_every_session() {
    let scenario = Scenario::scale_stress(7, 3_000);
    let arrivals = scenario.trace().len();
    let mut service = VodService::new(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig {
            initial_replicas: 6,
            local_rate: Mbps::new(2.0),
            ..ServiceConfig::default()
        },
    );
    service.run_to_end();
    assert_eq!(service.peak_sessions(), arrivals);
    assert_eq!(service.live_sessions(), 0);
    assert!(service.next_event_at().is_none());
    let report = service.into_report();
    assert_eq!(report.completed.len(), arrivals);
    assert_eq!(report.failed_requests, 0);
    assert_eq!(report.aborted_sessions, 0);
}
