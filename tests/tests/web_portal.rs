//! Integration test: the full user-facing path of the paper's
//! architecture — web module → database → VRA — plus admission control.

use std::net::Ipv4Addr;

use vod_core::admission::AdmissionPolicy;
use vod_core::ip::HomeResolver;
use vod_core::selection::{SelectionContext, ServerSelector};
use vod_core::vra::Vra;
use vod_core::web::UserPortal;
use vod_db::{AdminCredential, Database};
use vod_integration_tests::grnet;
use vod_net::topologies::grnet::{GrnetNode, TimeOfDay};
use vod_sim::SimTime;
use vod_storage::video::{Megabytes, VideoId, VideoLibrary, VideoMeta};

/// Builds the paper's whole front-end around the GRNET backbone: six city
/// prefixes, a small catalog, titles spread over two cities.
fn front_end() -> (UserPortal, Database) {
    let g = grnet();
    let mut library = VideoLibrary::new();
    for (i, name) in ["Zorba", "Stella", "Rebetiko"].iter().enumerate() {
        library.insert(VideoMeta::new(
            VideoId::new(i as u32),
            *name,
            Megabytes::new(600.0),
            1.5,
        ));
    }
    let mut db = Database::from_topology(g.topology(), library);
    let admin = AdminCredential::new("root");
    {
        let mut la = db.limited_access(&admin).unwrap();
        la.add_title(g.node(GrnetNode::Thessaloniki), VideoId::new(0))
            .unwrap();
        la.add_title(g.node(GrnetNode::Xanthi), VideoId::new(0))
            .unwrap();
        la.add_title(g.node(GrnetNode::Athens), VideoId::new(1))
            .unwrap();
    }
    let mut resolver = HomeResolver::new();
    for (i, node) in GrnetNode::ALL.iter().enumerate() {
        resolver
            .add(Ipv4Addr::new(150, 140 + i as u8, 0, 0), 16, g.node(*node))
            .unwrap();
    }
    (UserPortal::new(resolver), db)
}

#[test]
fn user_journey_browse_search_request_route() {
    let g = grnet();
    let (portal, db) = front_end();

    // Browse: three titles, availability counts visible.
    let catalog = portal.browse(&db);
    assert_eq!(catalog.len(), 3);
    assert_eq!(
        catalog
            .iter()
            .find(|e| e.title == "Zorba")
            .unwrap()
            .replicas,
        2
    );

    // Search.
    let hits = portal.search(&db, "zor");
    assert_eq!(hits.len(), 1);
    let zorba = hits[0].video;

    // Request from a Patra address (prefix 150.141/16 → U2).
    let request = portal
        .place_request(
            &db,
            Ipv4Addr::new(150, 141, 7, 9),
            zorba,
            SimTime::from_secs(60),
        )
        .unwrap();
    assert_eq!(request.home, g.node(GrnetNode::Patra));

    // The VRA routes it — Experiment-B conditions (title only in
    // Thessaloniki and Xanthi).
    let snapshot = g.snapshot(TimeOfDay::T1000);
    let candidates = db.full_access().servers_with_title(zorba);
    let selection = Vra::default()
        .select(&SelectionContext {
            topology: g.topology(),
            snapshot: &snapshot,
            home: request.home,
            candidates: &candidates,
        })
        .unwrap();
    assert_eq!(selection.server, g.node(GrnetNode::Thessaloniki));
    assert_eq!(
        selection.route.display_with(g.topology()).to_string(),
        "U2,U3,U4"
    );

    // Admission: at 10am the Thessaloniki–Ioannina leg of U2,U3,U4 is 74%
    // loaded (0.52 Mbps free) — the VRA's cheapest route cannot actually
    // carry a 1.5 Mbps stream, and the QoS floor says so, naming the
    // bottleneck. (This is exactly the routing-vs-capacity gap E6
    // quantifies.)
    let policy = AdmissionPolicy::new(1.0);
    match policy.check(g.topology(), &snapshot, &selection.route, 1.5) {
        vod_core::admission::AdmissionDecision::Reject {
            bottleneck,
            available,
            ..
        } => {
            use vod_net::topologies::grnet::GrnetLink;
            assert_eq!(
                g.grnet_link(bottleneck),
                Some(GrnetLink::ThessalonikiIoannina)
            );
            assert!((available.as_f64() - 0.52).abs() < 1e-9);
        }
        vod_core::admission::AdmissionDecision::Admit => {
            panic!("a 74%-loaded 2 Mbit link cannot carry 1.5 Mbps")
        }
    }
    // A lighter stream (e.g. 0.5 Mbps preview quality) is admitted.
    assert!(policy
        .check(g.topology(), &snapshot, &selection.route, 0.5)
        .is_admit());
    // "Stella" lives in Athens; that request is pure Patra-Athens (91%
    // loaded) and is likewise gated.
    let athens_route = {
        let candidates = db.full_access().servers_with_title(VideoId::new(1));
        Vra::default()
            .select(&SelectionContext {
                topology: g.topology(),
                snapshot: &snapshot,
                home: request.home,
                candidates: &candidates,
            })
            .unwrap()
            .route
    };
    assert!(!policy
        .check(g.topology(), &snapshot, &athens_route, 1.5)
        .is_admit());
}

#[test]
fn users_cannot_reach_the_limited_access_module() {
    let (_, mut db) = front_end();
    // A random user credential is rejected; the type system already
    // prevents FullAccess from exposing link state, this checks the
    // credential gate.
    assert!(db
        .limited_access(&AdminCredential::new("not-an-admin"))
        .is_err());
}

#[test]
fn unknown_requests_fail_cleanly() {
    let (portal, db) = front_end();
    assert!(portal
        .place_request(
            &db,
            Ipv4Addr::new(150, 141, 1, 1),
            VideoId::new(99),
            SimTime::ZERO
        )
        .is_err());
    assert!(portal
        .place_request(
            &db,
            Ipv4Addr::new(9, 9, 9, 9),
            VideoId::new(0),
            SimTime::ZERO
        )
        .is_err());
}
