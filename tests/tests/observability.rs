//! Integration tests for the observability layer: the golden
//! determinism contract (same scenario + config → byte-identical JSONL
//! trace), sink equivalence, run-report consistency, and histogram
//! invariants.

use proptest::prelude::*;

use vod_core::service::{ServiceConfig, VodService};
use vod_core::vra::Vra;
use vod_integration_tests::TEST_SEED;
use vod_net::NodeId;
use vod_obs::{JsonlWriter, RingRecorder, RunReport};
use vod_sim::metrics::Histogram;
use vod_sim::SimTime;
use vod_workload::scenario::Scenario;

/// Runs the GRNET case study with a JSONL sink and returns the raw
/// trace bytes plus the run report.
fn traced_run(config: ServiceConfig) -> (Vec<u8>, RunReport) {
    let scenario = Scenario::grnet_case_study(TEST_SEED);
    let service = VodService::with_sink(
        &scenario,
        Box::new(Vra::default()),
        config,
        JsonlWriter::new(Vec::new()),
    );
    let (_report, run_report, sink) = service.run_full();
    (sink.into_inner(), run_report)
}

/// The golden test: two identical runs produce byte-identical traces,
/// and the trace exercises every major event family.
#[test]
fn trace_is_byte_identical_across_runs() {
    let (first, _) = traced_run(ServiceConfig::default());
    let (second, _) = traced_run(ServiceConfig::default());
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "traces of identical runs must match byte-for-byte"
    );

    let text = String::from_utf8(first).unwrap();
    for kind in [
        "\"kind\":\"request_arrival\"",
        "\"kind\":\"vra_select\"",
        "\"kind\":\"dma_",
        "\"kind\":\"session_start\"",
        "\"kind\":\"session_complete\"",
        "\"kind\":\"snmp_poll\"",
        "\"kind\":\"background_update\"",
    ] {
        assert!(text.contains(kind), "trace is missing {kind}");
    }
}

/// Every trace line is a JSON object stamped with a monotonically
/// non-decreasing simulation time.
#[test]
fn trace_lines_are_json_objects_in_time_order() {
    let (bytes, _) = traced_run(ServiceConfig::default());
    let text = String::from_utf8(bytes).unwrap();
    let mut last_at = 0u64;
    let mut lines = 0u64;
    for line in text.lines() {
        assert!(line.starts_with("{\"at_us\":"), "bad line start: {line}");
        assert!(line.ends_with('}'), "bad line end: {line}");
        let at: u64 = line["{\"at_us\":".len()..]
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(at >= last_at, "events out of order at line: {line}");
        last_at = at;
        lines += 1;
    }
    assert!(
        lines > 100,
        "expected a substantial trace, got {lines} lines"
    );
}

/// A large-enough ring recorder captures exactly the stream the JSONL
/// writer serializes.
#[test]
fn ring_recorder_matches_jsonl_writer() {
    let (bytes, _) = traced_run(ServiceConfig::default());
    let scenario = Scenario::grnet_case_study(TEST_SEED);
    let service = VodService::with_sink(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig::default(),
        RingRecorder::new(1 << 20),
    );
    let (_report, _run_report, recorder) = service.run_full();
    assert_eq!(recorder.dropped(), 0);
    assert_eq!(recorder.to_jsonl(), String::from_utf8(bytes).unwrap());
}

/// The run report agrees with the service report, round-trips through
/// JSON, and renders a Prometheus exposition with the expected series.
#[test]
fn run_report_is_consistent_and_serializable() {
    let scenario = Scenario::grnet_case_study(TEST_SEED);
    let service = VodService::new(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig::default(),
    );
    let (report, run_report, _sink) = service.run_full();

    assert_eq!(run_report.summary.completed, report.completed.len() as u64);
    assert_eq!(run_report.summary.dma_total, report.dma);
    assert_eq!(run_report.summary.engine, report.engine);
    assert_eq!(
        run_report.startup_latency.count(),
        report.completed.len() as u64
    );
    assert!(run_report.summary.snmp_polls > 0);
    assert!(run_report.summary.engine.is_some());

    let back: RunReport = serde_json::from_str(&run_report.to_json()).unwrap();
    assert_eq!(run_report, back);

    let prom = run_report.to_prometheus();
    for series in [
        "# TYPE vod_sessions_completed counter",
        "# TYPE vod_dma_hits counter",
        "vod_dma_server_requests{server=",
        "vod_engine_requests",
        "# TYPE vod_startup_latency_seconds histogram",
        "vod_startup_latency_seconds_bucket{le=\"+Inf\"}",
        "vod_startup_latency_seconds_count",
    ] {
        assert!(prom.contains(series), "exposition is missing {series}");
    }
}

/// A scheduled outage shows up in the trace as server_down/server_up
/// events, and the stall histogram picks up whatever stalls it causes.
#[test]
fn outage_events_appear_in_trace() {
    let config = ServiceConfig {
        failures: vec![(
            SimTime::from_secs(10 * 3600),
            SimTime::from_secs(12 * 3600),
            NodeId::new(0),
        )],
        ..ServiceConfig::default()
    };
    let (bytes, run_report) = traced_run(config.clone());
    let text = String::from_utf8(bytes).unwrap();
    assert!(text.contains("\"kind\":\"server_down\""));
    assert!(text.contains("\"kind\":\"server_up\""));

    // Determinism holds under failures too.
    let (again, _) = traced_run(config);
    assert_eq!(text, String::from_utf8(again).unwrap());
    assert_eq!(
        run_report.stall_duration.count(),
        run_report
            .stall_duration
            .nonzero_buckets()
            .map(|(_, _, n)| n)
            .sum::<u64>()
    );
}

/// A fault plan surfaces every fault-event family in the trace, and the
/// trace stays deterministic under chaos.
#[test]
fn fault_plan_events_appear_in_trace() {
    use vod_core::service::RetryPolicy;
    use vod_net::topologies::grnet::{Grnet, GrnetLink};
    use vod_sim::fault::FaultPlan;
    use vod_sim::SimDuration;

    let grnet = Grnet::new();
    let start = SimTime::from_secs(9 * 3600);
    let plan = FaultPlan::new()
        .link_outage(
            start,
            start + SimDuration::from_secs(1200),
            grnet.link(GrnetLink::AthensHeraklio),
        )
        .link_degrade(
            start + SimDuration::from_secs(1800),
            start + SimDuration::from_secs(3600),
            grnet.link(GrnetLink::ThessalonikiAthens),
            0.5,
        )
        .snmp_outage(start, start + SimDuration::from_secs(1800));
    let config = ServiceConfig {
        fault_plan: plan,
        retry: RetryPolicy::with_attempts(2),
        ..ServiceConfig::default()
    };
    let (bytes, _) = traced_run(config.clone());
    let text = String::from_utf8(bytes).unwrap();
    for kind in [
        "\"kind\":\"link_down\"",
        "\"kind\":\"link_up\"",
        "\"kind\":\"link_degrade_start\"",
        "\"kind\":\"link_degrade_end\"",
        "\"kind\":\"snmp_outage_start\"",
        "\"kind\":\"snmp_outage_end\"",
        "\"kind\":\"snmp_stale_view\"",
    ] {
        assert!(text.contains(kind), "trace is missing {kind}");
    }
    let (again, _) = traced_run(config);
    assert_eq!(text, String::from_utf8(again).unwrap());
}

proptest! {
    /// Histogram bucket counts always sum to the number of samples.
    #[test]
    fn histogram_buckets_sum_to_count(values in proptest::collection::vec(0.0f64..1e9, 0..200)) {
        let mut h = Histogram::new(1e-6, 40, 8);
        for v in &values {
            h.record(*v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.bucket_total(), h.count());
        prop_assert_eq!(
            h.nonzero_buckets().map(|(_, _, n)| n).sum::<u64>(),
            h.count()
        );
    }

    /// Quantiles are monotone in the requested rank and stay within the
    /// observed range.
    #[test]
    fn histogram_quantiles_are_monotone(
        values in proptest::collection::vec(1e-9f64..1e12, 1..200),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..20),
    ) {
        let mut h = Histogram::new(1e-6, 40, 8);
        for v in &values {
            h.record(*v);
        }
        let mut sorted_qs = qs;
        sorted_qs.sort_by(f64::total_cmp);
        let mut last = f64::NEG_INFINITY;
        for q in sorted_qs {
            let v = h.quantile(q);
            prop_assert!(v >= last, "quantile({}) = {} < previous {}", q, v, last);
            prop_assert!(v >= h.min() && v <= h.max());
            last = v;
        }
    }
}
