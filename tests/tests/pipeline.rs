//! Integration test: the SNMP → database → VRA information pipeline,
//! checking that the routing algorithm really operates on the database's
//! (stale) view, as the paper prescribes.

use vod_core::selection::{SelectionContext, ServerSelector};
use vod_core::vra::Vra;
use vod_db::{AdminCredential, Database};
use vod_integration_tests::grnet;
use vod_net::topologies::grnet::{GrnetLink, GrnetNode, TimeOfDay};
use vod_net::Mbps;
use vod_sim::flow::FlowNetwork;
use vod_sim::traffic::BackgroundModel;
use vod_sim::{SimDuration, SimTime};
use vod_snmp::SnmpSystem;
use vod_storage::video::VideoLibrary;

#[test]
fn vra_sees_the_database_not_the_network() {
    let g = grnet();
    let mut db = Database::from_topology(g.topology(), VideoLibrary::new());
    let mut net = FlowNetwork::new(g.topology().clone());
    let mut snmp = SnmpSystem::new(g.topology(), SimDuration::from_mins(2));

    // Load the Patra-Athens link heavily and poll at t = 2 min.
    let pa = g.link(GrnetLink::PatraAthens);
    net.set_background(pa, Mbps::new(1.8));
    snmp.accumulate(&net, SimDuration::from_mins(2));
    snmp.poll(g.topology(), &mut db, SimTime::from_secs(120))
        .unwrap();

    // The network then changes, but no poll happens.
    net.set_background(pa, Mbps::ZERO);

    let admin = AdminCredential::new("root");
    let snapshot = db.limited_access(&admin).unwrap().snapshot(g.topology());
    // The database still reports the congested reading…
    assert!((snapshot.used(pa).as_f64() - 1.8).abs() < 1e-9);
    // …so the VRA avoids Patra-Athens even though the real link is idle.
    let candidates = [g.node(GrnetNode::Athens)];
    let ctx = SelectionContext {
        topology: g.topology(),
        snapshot: &snapshot,
        home: g.node(GrnetNode::Patra),
        candidates: &candidates,
    };
    let selection = Vra::default().select(&ctx).unwrap();
    assert!(
        !selection.route.contains_link(pa),
        "stale DB view must steer routing away from Patra-Athens, got {}",
        selection.route.display_with(g.topology())
    );

    // After the next poll the fresh state is visible and the direct link
    // wins again.
    snmp.accumulate(&net, SimDuration::from_mins(2));
    snmp.poll(g.topology(), &mut db, SimTime::from_secs(240))
        .unwrap();
    let snapshot = db.limited_access(&admin).unwrap().snapshot(g.topology());
    let ctx = SelectionContext {
        topology: g.topology(),
        snapshot: &snapshot,
        home: g.node(GrnetNode::Patra),
        candidates: &candidates,
    };
    let selection = Vra::default().select(&ctx).unwrap();
    assert!(selection.route.contains_link(pa));
    assert_eq!(selection.route.hops(), 1);
}

#[test]
fn background_model_through_snmp_matches_table2() {
    // Drive the Table 2 diurnal model through counters + polling and
    // compare the database readings against the recorded values.
    let g = grnet();
    let model = BackgroundModel::grnet_table2(&g);
    let mut db = Database::from_topology(g.topology(), VideoLibrary::new());
    let mut net = FlowNetwork::new(g.topology().clone());
    let mut snmp = SnmpSystem::new(g.topology(), SimDuration::from_mins(2));

    let at = SimTime::from_secs(16 * 3600); // 4pm
    snmp.reset_epoch(at);
    model.apply(&mut net, at);
    snmp.accumulate(&net, SimDuration::from_mins(2));
    snmp.poll(g.topology(), &mut db, at + SimDuration::from_mins(2))
        .unwrap();

    let admin = AdminCredential::new("root");
    let la = db.limited_access(&admin).unwrap();
    for link in GrnetLink::ALL {
        let reading = la.link(g.link(link)).unwrap().last_reading().unwrap();
        let expected = g.table2(link, TimeOfDay::T1600).traffic;
        // The model interpolates across the 2-minute window; the drift at
        // the table's own sample point is tiny.
        assert!(
            (reading.used.as_f64() - expected.as_f64()).abs() < 0.05,
            "{}: read {} vs table {}",
            link.label(),
            reading.used,
            expected
        );
    }
}

#[test]
fn catalog_updates_flow_from_storage_to_routing() {
    use vod_storage::cluster::ClusterSize;
    use vod_storage::dma::{DmaCache, DmaConfig};
    use vod_storage::video::{Megabytes, VideoId, VideoMeta};

    let g = grnet();
    let mut library = VideoLibrary::new();
    let video = VideoMeta::new(VideoId::new(0), "hot", Megabytes::new(200.0), 1.5);
    library.insert(video.clone());
    let mut db = Database::from_topology(g.topology(), library);
    let admin = AdminCredential::new("root");

    // Initially only Athens lists the title.
    let athens = g.node(GrnetNode::Athens);
    let patra = g.node(GrnetNode::Patra);
    db.limited_access(&admin)
        .unwrap()
        .add_title(athens, video.id())
        .unwrap();

    // Patra's DMA caches the title after a request; the service mirrors
    // the admission into the database (as vod-core does on completion).
    let mut cache = DmaCache::new(DmaConfig {
        disk_count: 2,
        disk_capacity: Megabytes::new(500.0),
        cluster_size: ClusterSize::new(Megabytes::new(100.0)),
        ..DmaConfig::default()
    })
    .unwrap();
    assert!(cache.on_request(&video).is_resident_after());
    db.limited_access(&admin)
        .unwrap()
        .add_title(patra, video.id())
        .unwrap();

    // A Patra client is now served locally.
    let candidates = db.full_access().servers_with_title(video.id());
    assert_eq!(candidates, vec![athens, patra]);
    let snapshot = db.limited_access(&admin).unwrap().snapshot(g.topology());
    let ctx = SelectionContext {
        topology: g.topology(),
        snapshot: &snapshot,
        home: patra,
        candidates: &candidates,
    };
    let selection = Vra::default().select(&ctx).unwrap();
    assert!(selection.is_local());
}
