//! Cross-crate property tests: invariants that must hold on arbitrary
//! topologies, traffic states and request streams.

use proptest::prelude::*;

use vod_core::selection::SelectionContext;
use vod_core::vra::Vra;
use vod_net::topologies::random::connected_gnp;
use vod_net::{Mbps, NodeId, TrafficSnapshot};
use vod_storage::cluster::ClusterSize;
use vod_storage::dma::{DmaCache, DmaConfig, EvictionMode};
use vod_storage::video::{Megabytes, VideoId, VideoMeta};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On any connected topology with any load state, the VRA returns a
    /// valid route from the home server to one of the candidates, and no
    /// candidate has a cheaper best route than the chosen one.
    #[test]
    fn vra_selects_a_cheapest_valid_route(
        n in 3usize..20,
        p in 0.0f64..0.4,
        seed in 0u64..1_000,
        load in 0.0f64..1.5,
        candidate_picks in proptest::collection::vec(0usize..20, 1..5),
        home_pick in 0usize..20,
    ) {
        let topo = connected_gnp(n, p, seed);
        let mut snapshot = TrafficSnapshot::zero(&topo);
        for link in topo.link_ids() {
            let cap = topo.link(link).capacity();
            snapshot.set_used(link, Mbps::new(cap.as_f64() * load * ((link.index() % 3) as f64) / 3.0));
        }
        let home = NodeId::new((home_pick % n) as u32);
        let mut candidates: Vec<NodeId> = candidate_picks
            .iter()
            .map(|&c| NodeId::new((c % n) as u32))
            .collect();
        candidates.sort();
        candidates.dedup();

        let report = Vra::default().select_with_report(&SelectionContext {
            topology: &topo,
            snapshot: &snapshot,
            home,
            candidates: &candidates,
        }).expect("connected topology always yields a route");

        let sel = &report.selection;
        prop_assert!(candidates.contains(&sel.server));
        prop_assert!(sel.route.is_valid_in(&topo));
        prop_assert_eq!(sel.route.source(), home);
        prop_assert_eq!(sel.route.target(), sel.server);
        // No candidate's route beats the chosen cost.
        for (_, route) in &report.candidate_routes {
            if let Some(r) = route {
                prop_assert!(sel.route.cost() <= r.cost() + 1e-9);
            }
        }
        // Local candidates always win outright.
        if candidates.contains(&home) {
            prop_assert!(sel.is_local());
        }
    }

    /// The DMA cache never overcommits its disks, and the resident set
    /// only ever contains requested (or preloaded) titles.
    #[test]
    fn dma_never_overcommits(
        requests in proptest::collection::vec((0u32..30, 50.0f64..400.0), 1..120),
        disk_capacity in 200.0f64..2_000.0,
        eviction_until_fit in any::<bool>(),
    ) {
        let mut cache = DmaCache::new(DmaConfig {
            disk_count: 3,
            disk_capacity: Megabytes::new(disk_capacity),
            cluster_size: ClusterSize::new(Megabytes::new(50.0)),
            admit_threshold: 0,
            eviction: if eviction_until_fit {
                EvictionMode::UntilFit
            } else {
                EvictionMode::SingleAttempt
            },
        }).expect("valid config");

        // Sizes must be stable per id for the stream to be coherent.
        let mut sizes = std::collections::BTreeMap::new();
        for (id, size) in &requests {
            sizes.entry(*id).or_insert(*size);
        }
        for (id, _) in &requests {
            let meta = VideoMeta::new(
                VideoId::new(*id),
                format!("t{id}"),
                Megabytes::new(sizes[id]),
                1.5,
            );
            let _ = cache.on_request(&meta);
            // Invariant: no disk over capacity.
            for d in 0..3 {
                let disk = cache.array().disk(d).expect("disk exists");
                prop_assert!(disk.used().as_f64() <= disk.capacity().as_f64() + 1e-6);
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.requests as usize, requests.len());
        prop_assert_eq!(
            stats.hits + stats.admissions + stats.rejections,
            stats.requests
        );
    }

    /// Striped storage conserves bytes: storing then removing any set of
    /// videos restores an empty array.
    #[test]
    fn store_remove_round_trip(
        sizes in proptest::collection::vec(10.0f64..900.0, 1..20),
    ) {
        use vod_storage::disk_array::DiskArray;
        let mut array = DiskArray::uniform(
            4,
            Megabytes::new(10_000.0),
            ClusterSize::new(Megabytes::new(75.0)),
        ).expect("valid");
        let videos: Vec<VideoMeta> = sizes
            .iter()
            .enumerate()
            .map(|(i, &mb)| VideoMeta::new(VideoId::new(i as u32), format!("t{i}"), Megabytes::new(mb), 1.5))
            .collect();
        let mut stored = Vec::new();
        for v in &videos {
            if array.store(v).is_ok() {
                stored.push(v.id());
            }
        }
        for id in stored {
            array.remove(id).expect("stored videos can be removed");
        }
        prop_assert_eq!(array.total_free(), array.total_capacity());
        prop_assert_eq!(array.stored_count(), 0);
    }
}
