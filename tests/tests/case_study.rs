//! Integration test: the paper's complete case study through the public
//! API — Table 3, Tables 4/5, Experiments A–D, including the documented
//! Experiment A erratum.

use vod_core::selection::SelectionContext;
use vod_core::vra::Vra;
use vod_integration_tests::grnet;
use vod_net::dijkstra::dijkstra_with_trace;
use vod_net::lvn::{LvnComputer, LvnParams};
use vod_net::topologies::grnet::{GrnetLink, GrnetNode, TimeOfDay};
use vod_net::NodeId;

#[test]
fn table3_reproduces_within_paper_rounding() {
    let g = grnet();
    let mut worst = 0.0f64;
    for time in TimeOfDay::ALL {
        let snap = g.snapshot(time);
        let lvn = LvnComputer::new(g.topology(), &snap, LvnParams::default());
        for link in GrnetLink::ALL {
            let delta = (lvn.lvn(g.link(link)) - g.paper_table3_lvn(link, time)).abs();
            worst = worst.max(delta);
        }
    }
    assert!(worst <= 0.006, "worst Table 3 delta {worst}");
    // And it is genuinely tight for most cells.
    assert!(worst >= 1e-4, "suspiciously exact — check the data entry");
}

#[test]
fn table4_trace_has_expected_shape_and_erratum() {
    let g = grnet();
    let weights = g.paper_table3_weights(TimeOfDay::T0800);
    let (paths, trace) =
        dijkstra_with_trace(g.topology(), &weights, g.node(GrnetNode::Patra)).unwrap();
    // Six settle steps on the six-node backbone.
    assert_eq!(trace.steps().len(), 6);
    // First settled: the source U2; second: U3 (cheapest label 0.07501).
    assert_eq!(trace.steps()[0].settled, vec![g.node(GrnetNode::Patra)]);
    assert_eq!(
        trace.steps()[1].settled,
        vec![g.node(GrnetNode::Patra), g.node(GrnetNode::Ioannina)]
    );
    // Published D5 = 0.315 (exact 0.3147) reproduces; D4 is the corrected
    // 0.21771 instead of the paper's 0.365.
    let d5 = paths.distance_to(g.node(GrnetNode::Xanthi)).unwrap();
    let d4 = paths.distance_to(g.node(GrnetNode::Thessaloniki)).unwrap();
    assert!((d5 - 0.3147).abs() < 1e-9);
    assert!((d4 - 0.21771).abs() < 1e-9);
    // The rendered table carries the paper's row format.
    let rendered = trace.render(g.topology());
    assert!(rendered.contains("{U2,U3}"));
    assert!(rendered.contains("D4"));
    assert!(rendered.contains("R"));
}

#[test]
fn table5_reproduces_exactly() {
    let g = grnet();
    let weights = g.paper_table3_weights(TimeOfDay::T1000);
    let (paths, _) = dijkstra_with_trace(g.topology(), &weights, g.node(GrnetNode::Patra)).unwrap();
    let route4 = paths.route_to(g.node(GrnetNode::Thessaloniki)).unwrap();
    let route5 = paths.route_to(g.node(GrnetNode::Xanthi)).unwrap();
    assert_eq!(route4.display_with(g.topology()).to_string(), "U2,U3,U4");
    assert_eq!(route5.display_with(g.topology()).to_string(), "U2,U1,U6,U5");
    assert!((route4.cost() - 1.007117).abs() < 1e-9);
    assert!((route5.cost() - 1.30821).abs() < 1e-9);
}

fn run_experiment(
    time: TimeOfDay,
    home: GrnetNode,
    candidates: &[GrnetNode],
) -> (GrnetNode, f64, String) {
    let g = grnet();
    let snap = g.snapshot(time);
    let ids: Vec<NodeId> = candidates.iter().map(|&c| g.node(c)).collect();
    let ctx = SelectionContext {
        topology: g.topology(),
        snapshot: &snap,
        home: g.node(home),
        candidates: &ids,
    };
    let report = Vra::default().select_with_report(&ctx).unwrap();
    (
        g.grnet_node(report.selection.server).unwrap(),
        report.selection.route.cost(),
        report
            .selection
            .route
            .display_with(g.topology())
            .to_string(),
    )
}

#[test]
fn experiment_a_corrected_choice() {
    use GrnetNode::*;
    let (choice, cost, route) = run_experiment(TimeOfDay::T0800, Patra, &[Thessaloniki, Xanthi]);
    assert_eq!(choice, Thessaloniki); // paper says Xanthi; see erratum
    assert_eq!(route, "U2,U3,U4");
    assert!((cost - 0.2177).abs() < 0.002);
}

#[test]
fn experiments_b_c_d_match_paper() {
    use GrnetNode::*;
    let (b_choice, b_cost, b_route) =
        run_experiment(TimeOfDay::T1000, Patra, &[Thessaloniki, Xanthi]);
    assert_eq!(b_choice, Thessaloniki);
    assert_eq!(b_route, "U2,U3,U4");
    assert!((b_cost - 1.007).abs() < 0.01);

    let (c_choice, c_cost, c_route) =
        run_experiment(TimeOfDay::T1600, Athens, &[Thessaloniki, Xanthi, Ioannina]);
    assert_eq!(c_choice, Ioannina);
    assert_eq!(c_route, "U1,U2,U3");
    assert!((c_cost - 1.222).abs() < 0.01);

    let (d_choice, d_cost, d_route) =
        run_experiment(TimeOfDay::T1800, Athens, &[Thessaloniki, Xanthi, Ioannina]);
    assert_eq!(d_choice, Ioannina);
    assert_eq!(d_route, "U1,U2,U3");
    assert!((d_cost - 1.236).abs() < 0.01);
}

#[test]
fn local_candidate_short_circuits_before_dijkstra() {
    let g = grnet();
    let snap = g.snapshot(TimeOfDay::T0800);
    let home = g.node(GrnetNode::Heraklio);
    let candidates = [home, g.node(GrnetNode::Athens)];
    let ctx = SelectionContext {
        topology: g.topology(),
        snapshot: &snap,
        home,
        candidates: &candidates,
    };
    let report = Vra::default().select_with_report(&ctx).unwrap();
    assert_eq!(report.selection.server, home);
    assert!(report.trace.is_none(), "no Dijkstra for local serves");
}
