//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in this package's `tests/` directory; this
//! library only hosts small fixtures they share.

#![forbid(unsafe_code)]

use vod_net::topologies::grnet::Grnet;

/// Builds the paper's GRNET case-study backbone.
pub fn grnet() -> Grnet {
    Grnet::new()
}

/// Default deterministic seed used across integration tests.
pub const TEST_SEED: u64 = 0xB0A5_1999;
