//! Flash crowd: the DMA's popularity cache under pressure.
//!
//! Nearly every request originates in Patra for a tiny, extremely skewed
//! title set. Early requests fetch remotely; the Disk Manipulation
//! Algorithm admits the hot titles into Patra's cache; late requests are
//! served locally. The example contrasts the dynamic service against a
//! run with caching effectively disabled (admission threshold set above
//! the request count), showing what the "most popular" concept buys.
//!
//! Run with: `cargo run --release --example flash_crowd`

use vod_core::service::{ServiceConfig, VodService};
use vod_core::vra::Vra;
use vod_workload::scenario::Scenario;

fn main() {
    let seed = 7;
    let scenario = Scenario::flash_crowd(seed);
    println!(
        "Flash crowd at Patra: {} requests for {} titles",
        scenario.trace().len(),
        scenario.library().len()
    );

    let with_dma = VodService::new(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig::default(),
    )
    .run();

    let without_dma = VodService::new(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig {
            // No title ever crosses the threshold → never cached.
            dma_admit_threshold: u64::MAX,
            ..ServiceConfig::default()
        },
    )
    .run();

    println!(
        "\n{:<22} {:>12} {:>12}",
        "metric", "with DMA", "without DMA"
    );
    let rows: [(&str, f64, f64); 5] = [
        (
            "mean startup (s)",
            with_dma.startup_summary().mean,
            without_dma.startup_summary().mean,
        ),
        (
            "p95 startup (s)",
            with_dma.startup_summary().p95,
            without_dma.startup_summary().p95,
        ),
        (
            "local clusters (%)",
            with_dma.mean_local_fraction() * 100.0,
            without_dma.mean_local_fraction() * 100.0,
        ),
        (
            "stall time (%)",
            with_dma.mean_stall_ratio() * 100.0,
            without_dma.mean_stall_ratio() * 100.0,
        ),
        (
            "max link util (mean %)",
            with_dma.max_link_utilization.mean * 100.0,
            without_dma.max_link_utilization.mean * 100.0,
        ),
    ];
    for (label, a, b) in rows {
        println!("{label:<22} {a:>12.2} {b:>12.2}");
    }
    println!(
        "\nDMA with caching: {:.1}% hits, {} admissions, {} evictions",
        with_dma.dma.hit_ratio() * 100.0,
        with_dma.dma.admissions,
        with_dma.dma.evictions
    );
}
