//! The full GRNET case study in motion: a simulated service day.
//!
//! Where the paper evaluates four hand-picked requests against four
//! recorded SNMP snapshots, this example runs the *whole service* over
//! the same backbone with the Table 2 diurnal background traffic: Zipf
//! requests arrive in all six cities from 8:00 to 18:00, every server
//! runs the Disk Manipulation Algorithm, SNMP polls feed the database,
//! and the Virtual Routing Algorithm routes (and mid-stream re-routes)
//! every cluster. The same day is then replayed with the baseline
//! selectors for comparison.
//!
//! Run with: `cargo run --release --example grnet_case_study`

use vod_core::selection::{FirstCandidate, HopCountNearest, RandomReplica, ServerSelector};
use vod_core::service::{ServiceConfig, VodService};
use vod_core::vra::Vra;
use vod_sim::SimDuration;
use vod_workload::scenario::Scenario;

fn main() {
    let seed = 42;
    let scenario = Scenario::grnet_case_study(seed);
    println!(
        "GRNET case study: {} requests over {} titles, seed {seed}",
        scenario.trace().len(),
        scenario.library().len()
    );

    let selectors: Vec<Box<dyn ServerSelector>> = vec![
        Box::new(Vra::default()),
        Box::new(HopCountNearest),
        Box::new(RandomReplica::new(seed)),
        Box::new(FirstCandidate),
    ];

    println!(
        "\n{:<16} {:>9} {:>7} {:>7} {:>11} {:>11} {:>9} {:>9} {:>9}",
        "selector",
        "completed",
        "failed",
        "aborted",
        "startup(s)",
        "p95(s)",
        "stall%",
        "switches",
        "local%"
    );
    let config = ServiceConfig {
        // Two initial copies of each title: the GRNET backbone is thin
        // enough (2 Mbit links at up to 91% background load) that pure
        // single-copy placement leaves little feasible remote capacity.
        initial_replicas: 2,
        ..ServiceConfig::default()
    };
    for selector in selectors {
        let report = VodService::new(&scenario, selector, config.clone()).run();
        let startup = report.startup_summary();
        println!(
            "{:<16} {:>9} {:>7} {:>7} {:>11.2} {:>11.2} {:>8.2}% {:>9.2} {:>8.1}%",
            report.selector,
            report.completed.len(),
            report.failed_requests,
            report.aborted_sessions,
            startup.mean,
            startup.p95,
            report.mean_stall_ratio() * 100.0,
            report.mean_switches(),
            report.mean_local_fraction() * 100.0,
        );
    }

    // Zoom into the VRA run for the QoS detail the paper cares about.
    let report = VodService::new(&scenario, Box::new(Vra::default()), config).run();
    println!("\nVRA run detail:");
    println!(
        "  smooth sessions (<10 s startup, no stalls): {:.1}%",
        report.smooth_fraction(SimDuration::from_secs(10)) * 100.0
    );
    println!(
        "  stalled sessions: {:.1}%",
        report.stalled_session_fraction() * 100.0
    );
    println!(
        "  DMA: {} requests, {:.1}% hit ratio, {} admissions, {} evictions",
        report.dma.requests,
        report.dma.hit_ratio() * 100.0,
        report.dma.admissions,
        report.dma.evictions
    );
    println!(
        "  instantaneous max link utilization: mean {:.1}%, p95 {:.1}%",
        report.max_link_utilization.mean * 100.0,
        report.max_link_utilization.p95 * 100.0
    );

    println!("\nPer-city startup delay (VRA run):");
    let grnet = vod_net::topologies::grnet::Grnet::new();
    for (home, summary) in report.per_home_startup() {
        let city = grnet
            .grnet_node(home)
            .map(|n| n.city())
            .unwrap_or("unknown");
        println!(
            "  {:<14} {:>3} sessions, mean {:>8.1} s, p95 {:>8.1} s",
            city, summary.count, summary.mean, summary.p95
        );
    }
}
