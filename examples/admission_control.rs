//! Admission control: enforcing the paper's "minimum QoS".
//!
//! The paper wants every admitted viewer to get at least "the minimum
//! video frame rate for which a video can be considered decent", but its
//! routing can only *search* for capacity — it never says no. This
//! example runs the same overloaded GRNET evening twice: open admission
//! (every request starts streaming, everyone degrades together) versus a
//! bitrate-headroom admission floor (excess requests are turned away,
//! admitted viewers keep their frame rate).
//!
//! Run with: `cargo run --release --example admission_control`

use vod_core::admission::AdmissionPolicy;
use vod_core::service::{ServiceConfig, VodService};
use vod_core::vra::Vra;
use vod_sim::SimDuration;
use vod_workload::scenario::Scenario;

fn main() {
    let seed = 9;
    let scenario = Scenario::flash_crowd(seed);
    println!(
        "Overloaded evening at Patra: {} requests for {} titles\n",
        scenario.trace().len(),
        scenario.library().len()
    );

    let mut rows = Vec::new();
    for (label, admission) in [
        ("open admission", None),
        ("QoS floor 1.0x", Some(AdmissionPolicy::new(1.0))),
        ("QoS floor 1.5x", Some(AdmissionPolicy::new(1.5))),
    ] {
        let report = VodService::new(
            &scenario,
            Box::new(Vra::default()),
            ServiceConfig {
                admission,
                initial_replicas: 2,
                ..ServiceConfig::default()
            },
        )
        .run();
        rows.push((label, report));
    }

    println!(
        "{:<16} {:>9} {:>9} {:>12} {:>9} {:>13}",
        "policy", "admitted", "rejected", "startup(s)", "stall%", "smooth(<60s)%"
    );
    for (label, report) in &rows {
        println!(
            "{:<16} {:>9} {:>9} {:>12.1} {:>8.1}% {:>12.1}%",
            label,
            report.completed.len(),
            report.rejected_requests,
            report.startup_summary().mean,
            report.mean_stall_ratio() * 100.0,
            report.smooth_fraction(SimDuration::from_secs(60)) * 100.0,
        );
    }

    println!("\nOpen admission serves everyone badly; the floor serves fewer viewers well —");
    println!("the missing half of the paper's QoS story, quantified.");
}
