//! Quickstart: one VRA decision on the paper's GRNET case study.
//!
//! Reproduces Experiment B of the paper end-to-end through the public
//! API: a client in Patra asks for a title available only in
//! Thessaloniki and Xanthi at 10am; the Virtual Routing Algorithm
//! weights every backbone link with its Link Validation Number, runs
//! Dijkstra, and picks Thessaloniki over the Ioannina path.
//!
//! Run with: `cargo run --example quickstart`

use vod_core::selection::SelectionContext;
use vod_core::vra::Vra;
use vod_net::lvn::{LvnComputer, LvnParams};
use vod_net::topologies::grnet::{Grnet, GrnetLink, GrnetNode, TimeOfDay};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grnet = Grnet::new();
    let time = TimeOfDay::T1000;
    let snapshot = grnet.snapshot(time);

    println!("== Link Validation Numbers at {} ==", time.label());
    let lvn = LvnComputer::new(grnet.topology(), &snapshot, LvnParams::default());
    for link in GrnetLink::ALL {
        println!(
            "  {:<24} capacity {:>5}  LVN {:.4}  (paper: {:.4})",
            link.label(),
            link.capacity().to_string(),
            lvn.lvn(grnet.link(link)),
            grnet.paper_table3_lvn(link, time),
        );
    }

    let home = grnet.node(GrnetNode::Patra);
    let candidates = [
        grnet.node(GrnetNode::Thessaloniki),
        grnet.node(GrnetNode::Xanthi),
    ];
    let ctx = SelectionContext {
        topology: grnet.topology(),
        snapshot: &snapshot,
        home,
        candidates: &candidates,
    };

    let report = Vra::default().select_with_report(&ctx)?;
    println!("\n== VRA decision (client at Patra/U2) ==");
    for (candidate, route) in &report.candidate_routes {
        match route {
            Some(r) => println!(
                "  candidate {}: best path {} (cost {:.4})",
                grnet.topology().node(*candidate).name(),
                r.display_with(grnet.topology()),
                r.cost()
            ),
            None => println!(
                "  candidate {}: unreachable",
                grnet.topology().node(*candidate).name()
            ),
        }
    }
    println!(
        "\n  => download from {} via {} (cost {:.4})",
        grnet.topology().node(report.selection.server).name(),
        report.selection.route.display_with(grnet.topology()),
        report.selection.route.cost()
    );

    if let Some(trace) = &report.trace {
        println!("\n== Dijkstra trace (the paper's Table 5) ==");
        println!("{}", trace.render(grnet.topology()));
    }
    Ok(())
}
