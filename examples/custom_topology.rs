//! Building your own network: the service beyond GRNET.
//!
//! The paper argues its service "grows with the network and has the
//! ability to adjust to a large variety of diverse networks". This
//! example builds a custom hub-and-spoke topology from scratch with the
//! public `TopologyBuilder` API, maps client IP prefixes to home servers
//! (Figure 5's first step), generates a workload, and runs the service.
//!
//! Run with: `cargo run --release --example custom_topology`

use std::net::Ipv4Addr;

use vod_core::ip::HomeResolver;
use vod_core::service::{ServiceConfig, VodService};
use vod_core::vra::Vra;
use vod_net::{Mbps, TopologyBuilder};
use vod_sim::traffic::BackgroundModel;
use vod_sim::{SimDuration, SimTime};
use vod_workload::arrivals::HourlyShape;
use vod_workload::library::{LibraryConfig, LibraryGenerator};
use vod_workload::scenario::Scenario;
use vod_workload::trace::TraceConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two regional hubs with three leaf cities each (10 Mbit access
    // links), hubs linked by a fat pipe.
    let mut b = TopologyBuilder::new();
    let hub_a = b.add_node("hub-a");
    let hub_b = b.add_node("hub-b");
    b.add_link(hub_a, hub_b, Mbps::new(34.0))?;
    let mut leaves = Vec::new();
    for i in 0..3 {
        let leaf = b.add_node(format!("a{i}"));
        b.add_link(hub_a, leaf, Mbps::new(10.0))?;
        leaves.push(leaf);
    }
    for i in 0..3 {
        let leaf = b.add_node(format!("b{i}"));
        b.add_link(hub_b, leaf, Mbps::new(10.0))?;
        leaves.push(leaf);
    }
    let topology = b.build();
    println!(
        "custom topology: {} nodes, {} links, connected = {}",
        topology.node_count(),
        topology.link_count(),
        topology.is_connected()
    );

    // Figure 5, step one: determine the home server from the client IP.
    let mut resolver = HomeResolver::new();
    for (i, &leaf) in leaves.iter().enumerate() {
        resolver
            .add(Ipv4Addr::new(10, i as u8, 0, 0), 16, leaf)
            .map_err(std::io::Error::other)?;
    }
    let client_ip = Ipv4Addr::new(10, 2, 14, 7);
    let home = resolver.resolve(client_ip).expect("prefix configured");
    println!(
        "client {client_ip} is homed at {}",
        topology.node(home).name()
    );

    // Workload: 40 titles, evening-peak arrivals over 4 hours.
    let seed = 11;
    let library = LibraryGenerator::new(LibraryConfig {
        titles: 40,
        min_size_mb: 150.0,
        max_size_mb: 400.0,
        ..LibraryConfig::default()
    })
    .generate(seed);
    let trace = TraceConfig {
        start: SimTime::from_secs(18 * 3600),
        duration: SimDuration::from_secs(4 * 3600),
        rate_per_sec: 0.008,
        shape: HourlyShape::evening_peak(),
        zipf_skew: 0.9,
        client_weights: None,
    }
    .generate(&topology, &library, seed);
    let background = BackgroundModel::uniform(topology.link_count(), Mbps::new(0.3));
    let scenario = Scenario::new("custom", topology, library, trace, background, seed);
    println!("workload: {} requests", scenario.trace().len());

    let report = VodService::new(
        &scenario,
        Box::new(Vra::default()),
        ServiceConfig::default(),
    )
    .run();
    let startup = report.startup_summary();
    println!(
        "\ncompleted {} sessions ({} failed, {} aborted, {} unfinished)",
        report.completed.len(),
        report.failed_requests,
        report.aborted_sessions,
        report.unfinished_sessions
    );
    println!(
        "startup mean {:.2} s / p95 {:.2} s, stall {:.2}%, {:.2} switches/session, {:.1}% local",
        startup.mean,
        startup.p95,
        report.mean_stall_ratio() * 100.0,
        report.mean_switches(),
        report.mean_local_fraction() * 100.0
    );
    Ok(())
}
