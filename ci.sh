#!/usr/bin/env bash
# Local CI gate: formatting, lints, tier-1 build+tests, and the vod-net
# feature matrix (`parallel` on and off). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> vod-net without the 'parallel' feature"
cargo test -q -p vod-net --no-default-features

echo "==> benches compile (cargo bench --no-run)"
cargo bench --no-run

echo "==> trace determinism (golden JSONL test)"
cargo test -q -p vod-integration-tests --test observability

echo "==> series determinism (golden --series test, lazy vs reference kernels)"
cargo test -q -p vod-integration-tests --test series

echo "==> vod-check lint (zero findings, zero stale allowlist entries)"
cargo run -q --release -p vod-check -- lint

echo "==> vod-check analyze (panic-reachability, determinism, obs-taxonomy drift)"
cargo run -q --release -p vod-check -- analyze

echo "==> vod-check audit (GRNET case-study trace replays clean)"
cargo run -q --release -p vod-check -- audit --grnet

echo "==> E13/E15 chaos smoke (fault plan + retry sweep; trace and series audit clean)"
chaos_trace="$(mktemp -t chaos-XXXXXX.jsonl)"
chaos_series="$(mktemp -t chaos-XXXXXX.series.json)"
scale_trace="$(mktemp -t scale-XXXXXX.jsonl)"
scale_json="$(mktemp -t scale-XXXXXX.json)"
analyze_json="$(mktemp -t analyze-XXXXXX.json)"
routing_json="$(mktemp -t routing-XXXXXX.json)"
proxy_json="$(mktemp -t proxy-XXXXXX.json)"
trap 'rm -f "$chaos_trace" "$chaos_series" "$scale_trace" "$scale_json" "$analyze_json" "$routing_json" "$proxy_json"' EXIT
cargo run -q --release -p vod-bench --bin ext_chaos -- \
  --trace "$chaos_trace" --series "$chaos_series" > /dev/null
cargo run -q --release -p vod-check -- audit --series "$chaos_series" "$chaos_trace"

echo "==> E14 scale smoke (10^5 concurrent sessions, >=10x kernel speedup, trace audits clean)"
cargo run -q --release -p vod-bench --bin scale -- \
  --gate --baseline-budget-secs 5 --json "$scale_json" --trace "$scale_trace"
cargo run -q --release -p vod-check -- audit "$scale_trace"

echo "==> perf-regression gate (fresh scale run vs committed BENCH_sim.json)"
cargo run -q --release -p vod-bench -- compare --json BENCH_sim.json "$scale_json"

echo "==> analyzer wall-time gate (full analyze pass under 2 s, no regression vs BENCH_obs.json)"
cargo run -q --release -p vod-bench --bin check_analyze -- \
  --json "$analyze_json" --gate 2
cargo run -q --release -p vod-bench -- compare --only check/ BENCH_obs.json "$analyze_json"

echo "==> E17 proxy-tier gate (flash-crowd offload + startup vs committed BENCH_proxy.json)"
cargo run -q --release -p vod-bench --bin ext_proxy -- --json "$proxy_json" > /dev/null
cargo run -q --release -p vod-bench -- compare --only proxy/ BENCH_proxy.json "$proxy_json"

echo "==> routing-engine perf gate (fresh bench vs committed BENCH_routing.json)"
# The warm gnp200 row is the headline dynamic-SSSP win: its tightened
# threshold (1.30x of the ~0.77 ms baseline ~= the 1 ms budget) fails a
# build that silently loses sub-millisecond warm batch selection, long
# before the 9x cliff of falling back to from-scratch Dijkstra. The
# repair rows get a mild tightening; the rest keep the noise-tolerant
# 1.75x default. The 500 ns floor mutes the ns-scale GRNET rows, which
# swing 2-3x from cache pressure right after the E14 scale run — the
# rows this gate exists for are all well above it.
CRITERION_JSON="$routing_json" cargo bench -q --bench routing_engine > /dev/null
cargo run -q --release -p vod-bench -- compare --only engine/ --floor-ns 500 \
  --threshold engine/select_batch/gnp200/warm=1.30 \
  --threshold engine/sssp_repair/1_dirty=1.60 \
  --threshold engine/sssp_repair/8_dirty=1.60 \
  BENCH_routing.json "$routing_json"

echo "==> rustdoc (no broken intra-doc links)"
RUSTDOCFLAGS="-D rustdoc::broken_intra_doc_links" cargo doc --no-deps --workspace -q

echo "CI OK"
