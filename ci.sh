#!/usr/bin/env bash
# Local CI gate: formatting, lints, tier-1 build+tests, and the vod-net
# feature matrix (`parallel` on and off). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> vod-net without the 'parallel' feature"
cargo test -q -p vod-net --no-default-features

echo "==> benches compile (cargo bench --no-run)"
cargo bench --no-run

echo "==> trace determinism (golden JSONL test)"
cargo test -q -p vod-integration-tests --test observability

echo "CI OK"
